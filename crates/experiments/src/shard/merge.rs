//! Folding worker manifests into one verified result set.
//!
//! Each worker wrote its own `worker-<id>.ckpt`; the merge loads them
//! all leniently (per-file torn-tail repair and parse-error counting,
//! exactly like single-process resume), reconciles cells that more than
//! one worker finished — the simulations are deterministic, so every
//! duplicated cell must be **bit-identical** across manifests
//! (`weighted_speedup` compared by bits, `RunResult` field by field) —
//! and cross-checks the lease log for quarantined cells and fleet
//! counters. Divergent duplicates are a hard [`MergeError`]: they mean
//! corruption or version skew, and silently picking one would launder
//! bad data into the results.
//!
//! The merged manifest is written canonically (cells sorted by key, one
//! compact JSON line each), so two independent explorations of the same
//! grid — a 4-worker chaos fleet and a serial reference run — produce
//! byte-identical files `cmp`(1) can verify.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use dap_telemetry::{render_exposition, MetricsRegistry};

use crate::checkpoint::{run_to_json, CheckpointManifest};
use crate::runner::WorkloadRun;
use crate::shard::grid::ExploreGrid;
use crate::shard::lease::{LeaseLog, LeaseSnapshot};

/// Why a merge failed hard (as opposed to reporting degraded data).
#[derive(Debug)]
pub enum MergeError {
    /// Two manifests hold different results for the same cell.
    Divergence {
        /// The conflicting cell's key.
        key: String,
        /// Manifest that held the first-seen result.
        first: PathBuf,
        /// Manifest whose result disagreed.
        second: PathBuf,
    },
    /// Reading a manifest or the lease log failed.
    Io(std::io::Error),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Divergence { key, first, second } => write!(
                f,
                "divergent duplicate for cell {key}: {} and {} disagree — \
                 deterministic simulations cannot disagree; suspect corruption or version skew",
                first.display(),
                second.display()
            ),
            Self::Io(e) => write!(f, "merge I/O error: {e}"),
        }
    }
}

impl From<std::io::Error> for MergeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The outcome of folding a fleet's manifests.
#[derive(Debug)]
pub struct MergeReport {
    /// Cells in the grid.
    pub total_cells: usize,
    /// Grid cells with a verified result, keyed for canonical output.
    pub runs: BTreeMap<String, WorkloadRun>,
    /// Grid cells quarantined by the lease log: `(key, fails, last error)`.
    pub quarantined: Vec<(String, u32, Option<String>)>,
    /// Grid cells with neither a result nor a quarantine record.
    pub missing: Vec<String>,
    /// Cells finished by more than one worker and reconciled
    /// bit-identically.
    pub duplicates: u64,
    /// Per-manifest malformed-line counts (only files with errors).
    pub parse_errors: Vec<(PathBuf, u64)>,
    /// Leases that expired under their holder (from the lease log).
    pub leases_expired: u64,
    /// Cells claimed over an expired lease.
    pub steals: u64,
    /// Worker restarts, as reported by the supervisor.
    pub worker_restarts: u64,
}

impl MergeReport {
    /// Whether every grid cell is accounted for (result or quarantine).
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// `dapd`-style Prometheus text exposition of fleet health.
    pub fn exposition(&self) -> String {
        let registry = MetricsRegistry::new();
        describe_shard_metrics(&registry);
        registry
            .counter("shard_cells_done_total")
            .add(self.runs.len() as u64);
        registry
            .counter("shard_cells_quarantined_total")
            .add(self.quarantined.len() as u64);
        registry
            .counter("shard_cells_missing_total")
            .add(self.missing.len() as u64);
        registry
            .counter("shard_cells_stolen_total")
            .add(self.steals);
        registry
            .counter("shard_leases_expired_total")
            .add(self.leases_expired);
        registry
            .counter("shard_duplicate_completions_total")
            .add(self.duplicates);
        registry
            .counter("shard_worker_restarts_total")
            .add(self.worker_restarts);
        registry
            .counter("shard_manifest_parse_errors_total")
            .add(self.parse_errors.iter().map(|(_, n)| n).sum());
        render_exposition(&registry.snapshot())
    }

    /// Human-readable fleet summary (printed by `dapctl explore`).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cells: {} done, {} quarantined, {} missing of {}\n",
            self.runs.len(),
            self.quarantined.len(),
            self.missing.len(),
            self.total_cells
        ));
        out.push_str(&format!(
            "fleet: {} leases expired, {} steals, {} duplicate completions, {} restarts\n",
            self.leases_expired, self.steals, self.duplicates, self.worker_restarts
        ));
        for (path, n) in &self.parse_errors {
            out.push_str(&format!(
                "warning: {}: {n} corrupt line(s) skipped\n",
                path.display()
            ));
        }
        for (key, fails, error) in &self.quarantined {
            out.push_str(&format!(
                "quarantined: {key} after {fails} failures (last: {})\n",
                error.as_deref().unwrap_or("<none>")
            ));
        }
        out
    }
}

/// Registers `# HELP` text for every `shard_*` family, so both the
/// merged `fleet.prom` and the live mid-run rewrite carry headers the
/// format checker (and a real Prometheus) accept.
fn describe_shard_metrics(registry: &MetricsRegistry) {
    for (name, help) in [
        (
            "shard_cells_done_total",
            "Grid cells with a verified result.",
        ),
        (
            "shard_cells_quarantined_total",
            "Grid cells quarantined after repeated failures.",
        ),
        (
            "shard_cells_missing_total",
            "Grid cells with neither a result nor a quarantine record.",
        ),
        (
            "shard_cells_in_flight",
            "Grid cells currently held under a live lease.",
        ),
        (
            "shard_cells_stolen_total",
            "Cells claimed over an expired lease.",
        ),
        (
            "shard_leases_expired_total",
            "Leases that expired under their holder.",
        ),
        (
            "shard_duplicate_completions_total",
            "Cells finished by more than one worker, reconciled bit-identically.",
        ),
        (
            "shard_worker_restarts_total",
            "Worker processes restarted by the supervisor.",
        ),
        (
            "shard_worker_crashes_total",
            "Worker crashes observed by the supervisor.",
        ),
        (
            "shard_worker_slots_abandoned",
            "Worker slots abandoned after exhausting their restart budget.",
        ),
        (
            "shard_manifest_parse_errors_total",
            "Malformed manifest or lease-log lines skipped.",
        ),
    ] {
        registry.describe(name, help);
    }
}

/// Prometheus exposition of a *live* fleet, rendered from a mid-run
/// [`LeaseSnapshot`] plus the supervisor's [`FleetOutcome`] so far.
/// `dapctl explore` rewrites `fleet.prom` from this once a second while
/// workers are still draining the grid (the merged post-run exposition
/// then overwrites it with verified numbers).
pub fn live_fleet_exposition(
    snapshot: &crate::shard::LeaseSnapshot,
    total_cells: usize,
    outcome: &crate::shard::FleetOutcome,
) -> String {
    let registry = MetricsRegistry::new();
    describe_shard_metrics(&registry);
    let done = snapshot.cells.values().filter(|c| c.done).count() as u64;
    let quarantined = snapshot.cells.values().filter(|c| c.quarantined).count() as u64;
    let in_flight = snapshot
        .cells
        .values()
        .filter(|c| {
            !c.done && !c.quarantined && c.holder_expires_ms.is_some_and(|e| e > snapshot.now_ms)
        })
        .count() as u64;
    let resolved = snapshot
        .cells
        .values()
        .filter(|c| c.done || c.quarantined)
        .count();
    registry.counter("shard_cells_done_total").add(done);
    registry
        .counter("shard_cells_quarantined_total")
        .add(quarantined);
    registry
        .counter("shard_cells_missing_total")
        .add(total_cells.saturating_sub(resolved) as u64);
    registry
        .gauge("shard_cells_in_flight")
        .set(in_flight as i64);
    registry
        .counter("shard_cells_stolen_total")
        .add(snapshot.steals);
    registry
        .counter("shard_leases_expired_total")
        .add(snapshot.leases_expired);
    registry
        .counter("shard_worker_restarts_total")
        .add(outcome.restarts);
    registry
        .counter("shard_worker_crashes_total")
        .add(outcome.crashes);
    registry
        .gauge("shard_worker_slots_abandoned")
        .set(i64::from(outcome.abandoned_slots));
    registry
        .counter("shard_manifest_parse_errors_total")
        .add(snapshot.parse_errors);
    render_exposition(&registry.snapshot())
}

/// Bit-identity for [`WorkloadRun`]s: every `RunResult` field equal and
/// the weighted speedup equal *as bits* (two different NaNs or a -0.0
/// vs 0.0 would be corruption, not agreement).
fn bit_identical(a: &WorkloadRun, b: &WorkloadRun) -> bool {
    a.result.per_core == b.result.per_core
        && a.result.stats == b.result.stats
        && a.result.dap_decisions == b.result.dap_decisions
        && a.weighted_speedup.to_bits() == b.weighted_speedup.to_bits()
}

/// Folds every `worker-*.ckpt` under `out_dir` plus the lease log into
/// a [`MergeReport`] for `grid`. `worker_restarts` is carried through
/// from the supervisor (the filesystem doesn't know it).
///
/// # Errors
///
/// [`MergeError::Divergence`] when two manifests disagree on a cell;
/// [`MergeError::Io`] for filesystem failures. Corrupt manifest *lines*
/// are not errors — they are counted per file in the report.
pub fn merge_worker_manifests(
    out_dir: &Path,
    grid: &ExploreGrid,
    quarantine_k: u32,
    worker_restarts: u64,
) -> Result<MergeReport, MergeError> {
    let mut manifest_paths: Vec<PathBuf> = std::fs::read_dir(out_dir)
        .map_err(MergeError::Io)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("worker-") && n.ends_with(".ckpt"))
                .unwrap_or(false)
        })
        .collect();
    manifest_paths.sort();

    let mut runs: BTreeMap<String, WorkloadRun> = BTreeMap::new();
    let mut origin: BTreeMap<String, PathBuf> = BTreeMap::new();
    let mut duplicates = 0u64;
    let mut parse_errors = Vec::new();
    for path in &manifest_paths {
        let manifest = CheckpointManifest::open(path)?;
        if manifest.parse_errors() > 0 {
            parse_errors.push((path.clone(), manifest.parse_errors()));
        }
        for (key, run) in manifest.entries() {
            match runs.get(&key) {
                None => {
                    runs.insert(key.clone(), run);
                    origin.insert(key, path.clone());
                }
                Some(existing) if bit_identical(existing, &run) => duplicates += 1,
                Some(_) => {
                    return Err(MergeError::Divergence {
                        first: origin.get(&key).cloned().unwrap_or_default(),
                        second: path.clone(),
                        key,
                    });
                }
            }
        }
        // A worker that crashed between recording a cell and marking its
        // lease done, then stole its own expired lease back, duplicates
        // the cell *within its own manifest*. Those copies face the same
        // bit-identity bar as cross-worker duplicates: the surviving
        // (last) record is already in `runs`, so each superseded record
        // is compared against it.
        for (key, prev) in manifest.superseded() {
            match runs.get(&key) {
                Some(kept) if bit_identical(kept, &prev) => duplicates += 1,
                _ => {
                    return Err(MergeError::Divergence {
                        first: path.clone(),
                        second: path.clone(),
                        key,
                    });
                }
            }
        }
    }

    let lease_path = out_dir.join("lease.log");
    let snapshot: Option<LeaseSnapshot> = if lease_path.exists() {
        // TTL is irrelevant for a read-only snapshot; quarantine_k must
        // match the fleet's so quarantine classification agrees.
        Some(LeaseLog::open(&lease_path, 1, quarantine_k)?.snapshot()?)
    } else {
        None
    };
    let mut quarantined: Vec<(String, u32, Option<String>)> = Vec::new();
    let mut missing = Vec::new();
    for key in grid.keys() {
        if runs.contains_key(&key) {
            continue;
        }
        match snapshot
            .as_ref()
            .and_then(|s| s.cells.get(&key))
            .filter(|c| c.quarantined)
        {
            Some(cell) => quarantined.push((key, cell.fails, cell.last_error.clone())),
            None => missing.push(key),
        }
    }
    // Results only count toward the grid; stray keys from an unrelated
    // run sharing the directory would poison the canonical output.
    let grid_keys: std::collections::HashSet<_> = grid.keys().into_iter().collect();
    runs.retain(|k, _| grid_keys.contains(k));

    Ok(MergeReport {
        total_cells: grid.cells.len(),
        runs,
        quarantined,
        missing,
        duplicates,
        parse_errors,
        leases_expired: snapshot.as_ref().map(|s| s.leases_expired).unwrap_or(0),
        steals: snapshot.as_ref().map(|s| s.steals).unwrap_or(0),
        worker_restarts,
    })
}

/// Writes the canonical merged manifest: cells sorted by key, one
/// compact JSON line each — the same record format the per-worker
/// manifests use, so the file loads through [`CheckpointManifest`] and
/// is byte-comparable between independent runs of the same grid.
///
/// # Errors
///
/// Filesystem errors creating or writing the file.
pub fn write_merged_manifest(report: &MergeReport, path: &Path) -> std::io::Result<()> {
    let mut text = String::new();
    for (key, run) in &report.runs {
        text.push_str(&run_to_json(key, run).to_string_compact());
        text.push('\n');
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::grid::explore_grid;
    use crate::shard::lease::ClaimOutcome;
    use mem_sim::{CoreResult, RunResult, SimStats};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dap-merge-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_with_speedup(weighted_speedup: f64) -> WorkloadRun {
        WorkloadRun {
            result: RunResult {
                per_core: vec![CoreResult {
                    instructions: 100,
                    cycles: 200,
                }],
                stats: SimStats::default(),
                dap_decisions: None,
            },
            weighted_speedup,
        }
    }

    /// A 3-cell grid stand-in that reuses real keys from the smoke grid.
    fn tiny_grid() -> ExploreGrid {
        let mut grid = explore_grid("smoke", 2_000).unwrap();
        grid.cells.truncate(3);
        grid
    }

    #[test]
    fn merge_reconciles_duplicates_and_reports_quarantine_and_missing() {
        let dir = temp_dir("fold");
        let grid = tiny_grid();
        let keys = grid.keys();
        let run = run_with_speedup(1.5);

        let m0 = CheckpointManifest::open(&dir.join("worker-0.ckpt")).unwrap();
        m0.record(&keys[0], &run);
        let m1 = CheckpointManifest::open(&dir.join("worker-1.ckpt")).unwrap();
        m1.record(&keys[0], &run); // bit-identical duplicate

        let lease = LeaseLog::open(&dir.join("lease.log"), 100, 1).unwrap();
        let ClaimOutcome::Won { epoch, .. } = lease.try_claim(&keys[1], "w0", 1).unwrap() else {
            panic!();
        };
        lease.fail(&keys[1], "w0", epoch, "poison").unwrap();

        let report = merge_worker_manifests(&dir, &grid, 1, 4).unwrap();
        assert_eq!(report.total_cells, 3);
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, keys[1]);
        assert_eq!(report.missing, vec![keys[2].clone()]);
        assert!(!report.is_complete());
        assert_eq!(report.worker_restarts, 4);

        let prom = report.exposition();
        assert!(prom.contains("shard_cells_done_total 1"), "{prom}");
        assert!(prom.contains("shard_cells_quarantined_total 1"), "{prom}");
        assert!(
            prom.contains("shard_duplicate_completions_total 1"),
            "{prom}"
        );
        assert!(prom.contains("shard_worker_restarts_total 4"), "{prom}");
        let text = report.summary();
        assert!(text.contains("quarantined"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_exposition_reflects_a_mid_run_lease_snapshot() {
        let dir = temp_dir("liveprom");
        let grid = tiny_grid();
        let keys = grid.keys();
        let lease = LeaseLog::open(&dir.join("lease.log"), 60_000, 3).unwrap();
        // One cell done, one held live, one untouched.
        let ClaimOutcome::Won { epoch, .. } = lease.try_claim(&keys[0], "w0", 1).unwrap() else {
            panic!();
        };
        lease.complete(&keys[0], "w0", epoch).unwrap();
        let ClaimOutcome::Won { .. } = lease.try_claim(&keys[1], "w1", 2).unwrap() else {
            panic!();
        };

        let snapshot = lease.snapshot().unwrap();
        let outcome = crate::shard::FleetOutcome {
            restarts: 2,
            crashes: 3,
            abandoned_slots: 1,
            interrupted: false,
        };
        let prom = live_fleet_exposition(&snapshot, grid.cells.len(), &outcome);
        dap_telemetry::check_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n{prom}"));
        assert!(prom.contains("# HELP shard_cells_done_total"), "{prom}");
        assert!(prom.contains("shard_cells_done_total 1"), "{prom}");
        assert!(prom.contains("shard_cells_in_flight 1"), "{prom}");
        assert!(prom.contains("shard_cells_missing_total 2"), "{prom}");
        assert!(prom.contains("shard_worker_crashes_total 3"), "{prom}");
        assert!(prom.contains("shard_worker_restarts_total 2"), "{prom}");
        assert!(prom.contains("shard_worker_slots_abandoned 1"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Drift check against the README "Metric reference" fleet table:
    /// every family either exposition can emit must be documented, and
    /// every documented `shard_*` family must still exist.
    #[test]
    fn readme_shard_metric_table_matches_the_expositions() {
        let dir = temp_dir("promdoc");
        let grid = tiny_grid();
        let merged = merge_worker_manifests(&dir, &grid, 3, 0)
            .unwrap()
            .exposition();
        let lease = LeaseLog::open(&dir.join("lease.log"), 60_000, 3).unwrap();
        let snapshot = lease.snapshot().unwrap();
        let outcome = crate::shard::FleetOutcome {
            restarts: 0,
            crashes: 0,
            abandoned_slots: 0,
            interrupted: false,
        };
        let live = live_fleet_exposition(&snapshot, grid.cells.len(), &outcome);
        let _ = std::fs::remove_dir_all(&dir);

        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        let begin = readme
            .find("<!-- shard-metric-table:begin -->")
            .expect("README shard table begin marker");
        let end = readme
            .find("<!-- shard-metric-table:end -->")
            .expect("README shard table end marker");
        let table = &readme[begin..end];

        let mut families: Vec<(&str, &str)> = Vec::new();
        for text in [merged.as_str(), live.as_str()] {
            for (family, kind) in text
                .lines()
                .filter_map(|l| l.strip_prefix("# TYPE "))
                .filter_map(|rest| rest.split_once(' '))
            {
                if !families.iter().any(|(f, _)| *f == family) {
                    families.push((family, kind));
                }
            }
        }
        assert!(families.len() >= 11, "family union too small: {families:?}");
        for (family, kind) in &families {
            let row = format!("| `{family}` | {kind} |");
            assert!(
                table.contains(&row),
                "README fleet metric table is missing `{family}` (type {kind})"
            );
        }
        for name in table
            .lines()
            .filter_map(|l| l.strip_prefix("| `"))
            .filter_map(|rest| rest.split_once('`').map(|(n, _)| n))
        {
            assert!(
                families.iter().any(|(f, _)| *f == name),
                "README documents `{name}` but no fleet exposition exports it"
            );
        }
    }

    #[test]
    fn within_manifest_duplicates_face_the_same_bit_identity_bar() {
        // A crashed-then-restarted worker that stole its own cell back
        // records it twice in the same file.
        let dir = temp_dir("selfdup");
        let grid = tiny_grid();
        let key = &grid.keys()[0];
        let run = run_with_speedup(1.5);
        let m0 = CheckpointManifest::open(&dir.join("worker-0.ckpt")).unwrap();
        m0.record(key, &run);
        m0.record(key, &run);
        let report = merge_worker_manifests(&dir, &grid, 3, 0).unwrap();
        assert_eq!(report.duplicates, 1);

        m0.record(key, &run_with_speedup(1.5000001));
        let err = merge_worker_manifests(&dir, &grid, 3, 0).unwrap_err();
        assert!(matches!(err, MergeError::Divergence { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergent_duplicates_are_a_hard_error() {
        let dir = temp_dir("diverge");
        let grid = tiny_grid();
        let key = &grid.keys()[0];
        let m0 = CheckpointManifest::open(&dir.join("worker-0.ckpt")).unwrap();
        m0.record(key, &run_with_speedup(1.5));
        let m1 = CheckpointManifest::open(&dir.join("worker-1.ckpt")).unwrap();
        m1.record(key, &run_with_speedup(1.5000001));

        let err = merge_worker_manifests(&dir, &grid, 3, 0).unwrap_err();
        match err {
            MergeError::Divergence { key: k, .. } => assert_eq!(&k, key),
            other => panic!("expected divergence, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_manifest_is_canonical_and_reloadable() {
        let dir = temp_dir("canon");
        let grid = tiny_grid();
        let keys = grid.keys();
        // Record in different orders into different worker sets; the
        // canonical output must not depend on either.
        let m0 = CheckpointManifest::open(&dir.join("worker-0.ckpt")).unwrap();
        m0.record(&keys[2], &run_with_speedup(1.1));
        m0.record(&keys[0], &run_with_speedup(1.2));
        m0.record(&keys[1], &run_with_speedup(1.3));
        let report = merge_worker_manifests(&dir, &grid, 3, 0).unwrap();
        assert!(report.is_complete());
        let merged_a = dir.join("merged-a.ckpt");
        write_merged_manifest(&report, &merged_a).unwrap();

        let dir_b = temp_dir("canon-b");
        let m1 = CheckpointManifest::open(&dir_b.join("worker-5.ckpt")).unwrap();
        m1.record(&keys[1], &run_with_speedup(1.3));
        let m2 = CheckpointManifest::open(&dir_b.join("worker-6.ckpt")).unwrap();
        m2.record(&keys[0], &run_with_speedup(1.2));
        m2.record(&keys[2], &run_with_speedup(1.1));
        let report_b = merge_worker_manifests(&dir_b, &grid, 3, 9).unwrap();
        let merged_b = dir_b.join("merged-b.ckpt");
        write_merged_manifest(&report_b, &merged_b).unwrap();

        assert_eq!(
            std::fs::read(&merged_a).unwrap(),
            std::fs::read(&merged_b).unwrap(),
            "canonical output is byte-identical regardless of worker layout"
        );
        // And it loads back through the ordinary manifest machinery.
        let reloaded = CheckpointManifest::open(&merged_a).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert_eq!(reloaded.parse_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
