//! Pareto-frontier report over the merged exploration results.
//!
//! Three axes per cell: **weighted speedup** (maximize), **DRAM-cache
//! data capacity** (minimize — capacity is die area and cost), and an
//! **energy proxy** (minimize) charging each DRAM-cache data or
//! metadata CAS 8 units and each main-memory CAS 20 (HBM-on-package
//! accesses cost roughly 8 pJ/bit against ~20 pJ/bit for off-package
//! DDR — the same ratio the paper's Section 7 energy discussion uses),
//! normalized per kilo-instruction so budgets cancel.
//!
//! A cell is on the frontier iff no other cell is at least as good on
//! all three axes and strictly better on one. The report groups by mix
//! so frontiers compare cache designs for a fixed workload, not apples
//! to oranges.

use std::collections::BTreeMap;

use crate::runner::WorkloadRun;
use crate::shard::grid::ExploreGrid;
use crate::shard::merge::MergeReport;

/// One merged cell projected onto the three report axes.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The cell's human-readable label (`mix/config/policy`).
    pub label: String,
    /// The workload-mix component of the label (grouping key).
    pub mix: String,
    /// Weighted speedup over alone runs (higher is better).
    pub weighted_speedup: f64,
    /// DRAM-cache data capacity in bytes (lower is better).
    pub capacity_bytes: u64,
    /// Energy proxy in units per kilo-instruction (lower is better).
    pub energy_per_kilo_instr: f64,
    /// Whether the point survives dominance within its mix group.
    pub on_frontier: bool,
}

/// Energy-proxy cost weights (units per CAS).
const CACHE_CAS_COST: u64 = 8;
const MEMORY_CAS_COST: u64 = 20;

fn energy_per_kilo_instr(run: &WorkloadRun) -> f64 {
    let stats = &run.result.stats;
    let units =
        CACHE_CAS_COST * (stats.ms_cas + stats.metadata_cas) + MEMORY_CAS_COST * stats.mm_cas;
    let instructions: u64 = run.result.per_core.iter().map(|c| c.instructions).sum();
    if instructions == 0 {
        0.0
    } else {
        units as f64 / instructions as f64 * 1000.0
    }
}

/// `a` dominates `b`: at least as good on every axis, strictly better
/// on at least one.
fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    let geq = a.weighted_speedup >= b.weighted_speedup
        && a.capacity_bytes <= b.capacity_bytes
        && a.energy_per_kilo_instr <= b.energy_per_kilo_instr;
    let gt = a.weighted_speedup > b.weighted_speedup
        || a.capacity_bytes < b.capacity_bytes
        || a.energy_per_kilo_instr < b.energy_per_kilo_instr;
    geq && gt
}

/// Projects the merged runs onto the report axes and marks, per mix
/// group, which points are Pareto-optimal. Points are returned grouped
/// by mix, frontier points first within each group, then by descending
/// speedup. O(n²) dominance per group — grids are tens of cells per
/// mix, nowhere near where that matters.
pub fn pareto_points(report: &MergeReport, grid: &ExploreGrid) -> Vec<ParetoPoint> {
    let mut groups: BTreeMap<String, Vec<ParetoPoint>> = BTreeMap::new();
    for (key, run) in &report.runs {
        let Some(cell) = grid.cell(key) else { continue };
        let mix = cell
            .label
            .split('/')
            .next()
            .unwrap_or(&cell.label)
            .to_string();
        groups.entry(mix.clone()).or_default().push(ParetoPoint {
            label: cell.label.clone(),
            mix,
            weighted_speedup: run.weighted_speedup,
            capacity_bytes: cell.capacity_bytes,
            energy_per_kilo_instr: energy_per_kilo_instr(run),
            on_frontier: false,
        });
    }
    let mut out = Vec::new();
    for (_, mut points) in groups {
        for i in 0..points.len() {
            points[i].on_frontier = !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &points[i]));
        }
        points.sort_by(|a, b| {
            b.on_frontier
                .cmp(&a.on_frontier)
                .then(b.weighted_speedup.total_cmp(&a.weighted_speedup))
                .then(a.label.cmp(&b.label))
        });
        out.extend(points);
    }
    out
}

/// Renders the Pareto report as an aligned text table, one section per
/// mix, frontier points marked `*`.
pub fn pareto_report(points: &[ParetoPoint]) -> String {
    let mut out = String::new();
    let mut current_mix: Option<&str> = None;
    for p in points {
        if current_mix != Some(p.mix.as_str()) {
            current_mix = Some(p.mix.as_str());
            out.push_str(&format!(
                "\n{:<40} {:>8} {:>12} {:>12}\n",
                format!("-- {} --", p.mix),
                "speedup",
                "capacity",
                "energy/ki"
            ));
        }
        let capacity = if p.capacity_bytes == 0 {
            "none".to_string()
        } else if p.capacity_bytes >= (1 << 20) {
            format!("{} MiB", p.capacity_bytes >> 20)
        } else {
            format!("{} KiB", p.capacity_bytes >> 10)
        };
        out.push_str(&format!(
            "{}{:<39} {:>8.4} {:>12} {:>12.2}\n",
            if p.on_frontier { "*" } else { " " },
            p.label,
            p.weighted_speedup,
            capacity,
            p.energy_per_kilo_instr
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, speedup: f64, capacity: u64, energy: f64) -> ParetoPoint {
        ParetoPoint {
            label: label.to_string(),
            mix: "mix".to_string(),
            weighted_speedup: speedup,
            capacity_bytes: capacity,
            energy_per_kilo_instr: energy,
            on_frontier: false,
        }
    }

    #[test]
    fn dominance_is_strict_on_at_least_one_axis() {
        let a = point("a", 2.0, 100, 5.0);
        let b = point("b", 1.5, 100, 5.0);
        let c = point("c", 2.0, 100, 5.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &c), "equal points do not dominate");
        // Trade-offs don't dominate: bigger cache, more speedup.
        let d = point("d", 2.5, 200, 5.0);
        assert!(!dominates(&d, &a));
        assert!(!dominates(&a, &d));
    }

    #[test]
    fn report_marks_frontier_and_groups_by_mix() {
        use crate::checkpoint::CheckpointManifest;
        use crate::shard::grid::explore_grid;
        use crate::shard::merge::merge_worker_manifests;
        use mem_sim::{CoreResult, RunResult, SimStats};

        let dir = std::env::temp_dir().join(format!("dap-pareto-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let grid = explore_grid("smoke", 2_000).unwrap();
        let manifest = CheckpointManifest::open(&dir.join("worker-0.ckpt")).unwrap();
        for (i, cell) in grid.cells.iter().enumerate() {
            let stats = SimStats {
                ms_cas: 100 + i as u64,
                mm_cas: 50,
                ..Default::default()
            };
            manifest.record(
                &cell.key,
                &crate::runner::WorkloadRun {
                    result: RunResult {
                        per_core: vec![CoreResult {
                            instructions: 2_000,
                            cycles: 4_000,
                        }],
                        stats,
                        dap_decisions: None,
                    },
                    weighted_speedup: 1.0 + 0.01 * i as f64,
                },
            );
        }
        let report = merge_worker_manifests(&dir, &grid, 3, 0).unwrap();
        let points = pareto_points(&report, &grid);
        assert_eq!(points.len(), grid.cells.len());
        let mixes: std::collections::BTreeSet<_> = points.iter().map(|p| p.mix.clone()).collect();
        assert_eq!(mixes.len(), 3, "one group per smoke mix");
        for mix in &mixes {
            assert!(
                points.iter().any(|p| &p.mix == mix && p.on_frontier),
                "every group has a frontier point"
            );
        }
        // Within a group the best-speedup-at-minimal-capacity-and-energy
        // point must be on the frontier; a point dominated on all axes
        // must not be.
        let text = pareto_report(&points);
        assert!(text.contains("speedup"), "{text}");
        assert!(text.lines().any(|l| l.starts_with('*')), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
