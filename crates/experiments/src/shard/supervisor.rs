//! Fleet supervision: spawn N workers, restart the ones that crash.
//!
//! The supervisor polls its children and applies one rule per exit:
//!
//! - **exit 0** — the worker drained the grid (or found it drained);
//!   nothing to do.
//! - **exit 130** ([`EXIT_INTERRUPTED`]) — the worker stopped on
//!   Ctrl-C. Never restarted: interruption is a user decision, not a
//!   fault.
//! - **anything else** (non-zero exit, death by signal) — a crash. The
//!   worker is restarted with a bumped incarnation, up to
//!   `max_restarts` times per slot, after an equal-jitter exponential
//!   backoff (the same `[exp/2, exp]` arithmetic as `dapd`'s client
//!   retry policy, driven by the same seeded in-tree SplitMix64) so a
//!   crash loop cannot hot-spin the machine and restarted fleets don't
//!   stampede.
//!
//! The supervisor never kills a healthy worker; on cancellation it
//! forwards SIGINT once so workers release their leases and exit 130,
//! then stops restarting. Losing a worker permanently is fine — any
//! surviving worker steals the dead worker's expired leases and drains
//! the grid alone.
//!
//! [`EXIT_INTERRUPTED`]: crate::cancel::EXIT_INTERRUPTED

use std::process::Child;
use std::time::{Duration, Instant};

use workloads::rng::SplitMix64;

use crate::cancel::{CancelToken, EXIT_INTERRUPTED};

/// Restart policy for one exploration fleet.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker processes to run (slot ids `0..workers`).
    pub workers: u32,
    /// Restarts allowed per worker slot before giving up on it.
    pub max_restarts: u32,
    /// First restart backoff; doubles per restart of the same slot.
    pub backoff_base: Duration,
    /// Ceiling on a single restart backoff.
    pub backoff_max: Duration,
    /// Seed for the jitter PRNG (deterministic restart schedules).
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_restarts: 2,
            backoff_base: Duration::from_millis(200),
            backoff_max: Duration::from_secs(5),
            seed: 0xDA95,
        }
    }
}

/// What happened to the fleet, for the merge report and exit code.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Worker restarts performed across all slots.
    pub restarts: u64,
    /// Worker crashes observed (including ones that were restarted).
    pub crashes: u64,
    /// Slots whose worker exceeded `max_restarts` and was abandoned.
    pub abandoned_slots: u32,
    /// At least one worker exited via Ctrl-C ([`EXIT_INTERRUPTED`]).
    pub interrupted: bool,
}

struct Slot {
    child: Option<Child>,
    incarnation: u32,
    restarts: u32,
    respawn_at: Option<Instant>,
}

/// Equal-jitter exponential backoff, mirroring `dapd::client`: uniform
/// in `[exp/2, exp]` with `exp = min(base · 2^(n-1), max)`.
fn backoff_delay(rng: &mut SplitMix64, restart: u32, base: Duration, max: Duration) -> Duration {
    let exp = base
        .saturating_mul(1u32 << restart.saturating_sub(1).min(20))
        .min(max);
    let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
    let half = nanos / 2;
    Duration::from_nanos(half + rng.below((nanos - half).max(1) + 1))
}

#[cfg(unix)]
fn forward_sigint(child: &Child) {
    // No libc dependency: /usr/bin/kill is universal on the Unix hosts
    // the multi-process explorer supports.
    let _ = std::process::Command::new("kill")
        .arg("-INT")
        .arg(child.id().to_string())
        .status();
}

#[cfg(not(unix))]
fn forward_sigint(_child: &Child) {}

/// Whether the child died from SIGINT itself (signal 2) — a worker that
/// got Ctrl-C (from the terminal's process group, or our forwarding)
/// before its own handler could turn it into exit 130.
#[cfg(unix)]
fn died_by_sigint(status: &std::process::ExitStatus) -> bool {
    use std::os::unix::process::ExitStatusExt;
    status.signal() == Some(2)
}

#[cfg(not(unix))]
fn died_by_sigint(_status: &std::process::ExitStatus) -> bool {
    false
}

/// Runs a fleet: `spawn(worker_id, incarnation)` starts one worker
/// process (incarnations are 1-based and bump on every restart).
/// Returns when every slot's worker has exited for good.
///
/// On `cancel` tripping, SIGINT is forwarded to running workers once
/// and restarts stop; workers then release their leases and exit 130.
///
/// # Errors
///
/// Only spawn/wait I/O errors. A *worker* failing is not an error —
/// it is restarted or counted in the [`FleetOutcome`].
pub fn supervise(
    cfg: &SupervisorConfig,
    spawn: impl FnMut(u32, u32) -> std::io::Result<Child>,
    cancel: &CancelToken,
) -> std::io::Result<FleetOutcome> {
    supervise_with_tick(cfg, spawn, cancel, |_| {})
}

/// [`supervise`] with a periodic observer: `tick` runs once per poll
/// iteration (~25 ms cadence) with the fleet health so far, so a caller
/// can publish live fleet metrics (`dapctl explore` rewrites
/// `fleet.prom` from it) without a second thread racing the supervisor.
/// The callback must be fast — it runs on the supervision loop.
///
/// # Errors
///
/// Same as [`supervise`]: spawn/wait I/O errors only.
pub fn supervise_with_tick(
    cfg: &SupervisorConfig,
    mut spawn: impl FnMut(u32, u32) -> std::io::Result<Child>,
    cancel: &CancelToken,
    mut tick: impl FnMut(&FleetOutcome),
) -> std::io::Result<FleetOutcome> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut outcome = FleetOutcome::default();
    let mut slots = Vec::with_capacity(cfg.workers as usize);
    for worker_id in 0..cfg.workers {
        slots.push(Slot {
            child: Some(spawn(worker_id, 1)?),
            incarnation: 1,
            restarts: 0,
            respawn_at: None,
        });
    }
    let mut sigint_sent = false;
    loop {
        if cancel.is_cancelled() && !sigint_sent {
            sigint_sent = true;
            for slot in &mut slots {
                slot.respawn_at = None; // cancelled: no more restarts
                if let Some(child) = &slot.child {
                    forward_sigint(child);
                }
            }
        }
        let mut all_settled = true;
        for (worker_id, slot) in slots.iter_mut().enumerate() {
            if let Some(child) = slot.child.as_mut() {
                match child.try_wait()? {
                    None => {
                        all_settled = false;
                        continue;
                    }
                    Some(status) => {
                        slot.child = None;
                        match status.code() {
                            Some(0) => {} // drained the grid; settled
                            Some(EXIT_INTERRUPTED) => outcome.interrupted = true,
                            _ if died_by_sigint(&status) => outcome.interrupted = true,
                            _ => {
                                // Crash: non-zero exit or killed by a
                                // signal (`code()` is None for signals).
                                outcome.crashes += 1;
                                if !sigint_sent && slot.restarts < cfg.max_restarts {
                                    slot.restarts += 1;
                                    let delay = backoff_delay(
                                        &mut rng,
                                        slot.restarts,
                                        cfg.backoff_base,
                                        cfg.backoff_max,
                                    );
                                    slot.respawn_at = Some(Instant::now() + delay);
                                    eprintln!(
                                        "supervisor: worker {worker_id} died ({status}); \
                                         restart {}/{} in {delay:?}",
                                        slot.restarts, cfg.max_restarts
                                    );
                                } else if !sigint_sent {
                                    outcome.abandoned_slots += 1;
                                    eprintln!(
                                        "supervisor: worker {worker_id} died ({status}); \
                                         restart budget exhausted, abandoning the slot \
                                         (survivors will steal its leases)"
                                    );
                                }
                            }
                        }
                    }
                }
            }
            if let Some(at) = slot.respawn_at {
                if Instant::now() >= at {
                    slot.respawn_at = None;
                    slot.incarnation += 1;
                    outcome.restarts += 1;
                    slot.child = Some(spawn(worker_id as u32, slot.incarnation)?);
                    all_settled = false;
                } else {
                    all_settled = false;
                }
            }
        }
        tick(&outcome);
        if all_settled {
            return Ok(outcome);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> std::io::Result<Child> {
        std::process::Command::new("sh")
            .arg("-c")
            .arg(script)
            .spawn()
    }

    fn fast_cfg(workers: u32, max_restarts: u32) -> SupervisorConfig {
        SupervisorConfig {
            workers,
            max_restarts,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
            seed: 0xDA95,
        }
    }

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for restart in 1..=10u32 {
            let exp = base.saturating_mul(1 << (restart - 1).min(20)).min(max);
            let d = backoff_delay(&mut a, restart, base, max);
            assert!(
                d >= exp / 2 && d <= exp,
                "restart {restart}: {d:?} vs {exp:?}"
            );
            assert_eq!(d, backoff_delay(&mut b, restart, base, max));
        }
    }

    #[test]
    fn clean_exits_are_not_restarted() {
        let mut spawns = 0u32;
        let outcome = supervise(
            &fast_cfg(2, 3),
            |_, _| {
                spawns += 1;
                sh("exit 0")
            },
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(spawns, 2);
        assert_eq!(outcome, FleetOutcome::default());
    }

    #[test]
    fn crashes_restart_with_bumped_incarnation_until_budget() {
        let mut log = Vec::new();
        let outcome = supervise(
            &fast_cfg(1, 2),
            |id, inc| {
                log.push((id, inc));
                sh("exit 3")
            },
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(log, vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(outcome.restarts, 2);
        assert_eq!(outcome.crashes, 3);
        assert_eq!(outcome.abandoned_slots, 1);
        assert!(!outcome.interrupted);
    }

    #[test]
    fn interrupted_workers_are_never_restarted() {
        let mut spawns = 0u32;
        let outcome = supervise(
            &fast_cfg(1, 5),
            |_, _| {
                spawns += 1;
                sh("exit 130")
            },
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(spawns, 1);
        assert!(outcome.interrupted);
        assert_eq!(outcome.restarts, 0);
    }

    #[test]
    fn tick_observes_fleet_health_every_iteration() {
        let mut ticks = 0u64;
        let mut saw_crash = false;
        let outcome = supervise_with_tick(
            &fast_cfg(1, 1),
            |_, inc| sh(if inc == 1 { "exit 7" } else { "exit 0" }),
            &CancelToken::new(),
            |o| {
                ticks += 1;
                saw_crash |= o.crashes > 0;
            },
        )
        .unwrap();
        assert!(ticks >= 1, "tick never fired");
        assert!(saw_crash, "tick never observed the crash");
        assert_eq!(outcome.crashes, 1);
        assert_eq!(outcome.restarts, 1);
    }

    #[cfg(unix)]
    #[test]
    fn death_by_signal_counts_as_a_crash_and_restarts() {
        let mut spawns = 0u32;
        let outcome = supervise(
            &fast_cfg(1, 1),
            |_, inc| {
                spawns += 1;
                if inc == 1 {
                    // First incarnation SIGKILLs itself; the restart
                    // exits cleanly.
                    sh("kill -9 $$")
                } else {
                    sh("exit 0")
                }
            },
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(spawns, 2);
        assert_eq!(outcome.crashes, 1);
        assert_eq!(outcome.restarts, 1);
        assert_eq!(outcome.abandoned_slots, 0);
    }

    #[cfg(unix)]
    #[test]
    fn cancellation_forwards_sigint_and_stops_restarting() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut spawns = 0u32;
        // A worker that sleeps until signalled, then exits 130 (the
        // trap mirrors the real worker's Ctrl-C path).
        let outcome = supervise(
            &fast_cfg(1, 5),
            |_, _| {
                spawns += 1;
                sh("trap 'exit 130' INT; sleep 30 & wait $!")
            },
            &cancel,
        )
        .unwrap();
        assert_eq!(spawns, 1, "no restarts after cancellation");
        assert!(outcome.interrupted);
    }
}
