//! One exploration worker process.
//!
//! A worker scans the grid for claimable cells, claims one through the
//! [`LeaseLog`], simulates it with a heartbeat thread renewing the lease
//! at TTL/3 cadence, and records the finished run into its **private**
//! checkpoint manifest (`worker-<id>.ckpt`) before appending the lease
//! `done` record. That ordering is deliberate: a crash between the two
//! leaves a completed manifest entry under a lease that later expires,
//! so the cell gets stolen, re-run, and the merge step reconciles the
//! bit-identical duplicate — whereas the reverse order could mark a
//! cell done whose result no manifest holds.
//!
//! Cells are executed serially (one simulation at a time per worker);
//! parallelism comes from running N worker processes. Within a cell,
//! two stop flags are armed through the quantum-granularity
//! [`ScopedStop`] seam: the process [`CancelToken`] (Ctrl-C → release
//! the lease, exit interrupted) and a stolen flag the heartbeat thread
//! trips when its renewal loses — a stolen cell is abandoned without
//! recording anything.
//!
//! Deterministic fault injection for the chaos harness rides on two
//! environment variables ([`KILL_ENV`], [`POISON_ENV`]) so a scheduled
//! SIGKILL-class death, a mid-run Ctrl-C, or a poisoned (always
//! panicking) cell can be staged at an exact claim index.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mem_sim::{ScopedStop, StopCause};

use crate::cancel::CancelToken;
use crate::checkpoint::CheckpointManifest;
use crate::exec::{classify, panic_message, CellErrorKind};
use crate::runner::{run_workload, AloneIpcCache};
use crate::shard::alone::{alone_key, AloneStore};
use crate::shard::grid::ExploreGrid;
use crate::shard::lease::{ClaimOutcome, LeaseLog, RenewOutcome};

/// Fault-injection schedule: `"<worker>:<incarnation>:<nth-claim>:<mode>"`
/// entries separated by `;`. Modes: `after-claim` (abort the process
/// right after winning the nth claim — a SIGKILL-class death holding a
/// fresh lease), `after-record` (abort after the manifest record but
/// before the lease `done` — forces a duplicate completion for the
/// merge to reconcile), `interrupt` (trip the cancel token at the nth
/// claim — a Ctrl-C: the lease is released and the worker exits 130).
pub const KILL_ENV: &str = "DAP_SHARD_KILL";

/// Label of a grid cell that panics on every attempt in every worker —
/// the poison cell the quarantine threshold is tested against.
pub const POISON_ENV: &str = "DAP_SHARD_POISON";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillMode {
    AfterClaim,
    AfterRecord,
    Interrupt,
}

#[derive(Debug, Clone, Copy)]
struct KillRule {
    nth_claim: u32,
    mode: KillMode,
}

fn kill_rules(worker_id: u32, incarnation: u32) -> Vec<KillRule> {
    let Ok(plan) = std::env::var(KILL_ENV) else {
        return Vec::new();
    };
    let mut rules = Vec::new();
    for entry in plan.split(';').filter(|e| !e.trim().is_empty()) {
        let parts: Vec<&str> = entry.trim().split(':').collect();
        let [w, inc, nth, mode] = parts.as_slice() else {
            eprintln!("warning: {KILL_ENV}: malformed entry {entry:?} ignored");
            continue;
        };
        let (Ok(w), Ok(inc), Ok(nth)) = (w.parse(), inc.parse(), nth.parse::<u32>()) else {
            eprintln!("warning: {KILL_ENV}: malformed entry {entry:?} ignored");
            continue;
        };
        let mode = match *mode {
            "after-claim" => KillMode::AfterClaim,
            "after-record" => KillMode::AfterRecord,
            "interrupt" => KillMode::Interrupt,
            other => {
                eprintln!("warning: {KILL_ENV}: unknown mode {other:?} ignored");
                continue;
            }
        };
        if (worker_id, incarnation) == (w, inc) {
            rules.push(KillRule {
                nth_claim: nth,
                mode,
            });
        }
    }
    rules
}

/// Configuration for one worker process.
pub struct WorkerConfig {
    /// Exploration output directory (shared by the whole fleet).
    pub out_dir: PathBuf,
    /// This worker's stable id (0-based; names its manifest).
    pub worker_id: u32,
    /// Restart generation (1-based; a restarted worker gets a new
    /// incarnation so stale heartbeats from its predecessor can never
    /// renew its claims).
    pub incarnation: u32,
    /// The grid to explore.
    pub grid: ExploreGrid,
    /// Lease TTL in milliseconds.
    pub ttl_ms: u64,
    /// Failures (across the fleet) that quarantine a cell.
    pub quarantine_k: u32,
    /// Cooperative cancellation (Ctrl-C).
    pub cancel: CancelToken,
}

/// What one worker process did before exiting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Cells this worker simulated, recorded, and completed.
    pub completed: usize,
    /// Cells whose simulation panicked under this worker's lease.
    pub failed: usize,
    /// Cells abandoned because the lease was stolen mid-run.
    pub abandoned: usize,
    /// The worker stopped on cancellation (exit with
    /// [`EXIT_INTERRUPTED`](crate::cancel::EXIT_INTERRUPTED)).
    pub interrupted: bool,
}

enum CellEnd {
    Completed,
    Failed,
    Abandoned,
    Interrupted,
}

/// Runs one worker to completion: returns when every grid cell is
/// completed or quarantined (`interrupted: false`) or on cancellation
/// (`interrupted: true`). Crashes — including injected ones — simply
/// kill the process; that is the failure mode the lease log exists for.
///
/// # Errors
///
/// I/O errors on the lease log or this worker's manifest. (A cell
/// panic is not an error — it is recorded as a lease failure.)
pub fn run_worker(cfg: &WorkerConfig) -> std::io::Result<WorkerSummary> {
    std::fs::create_dir_all(&cfg.out_dir)?;
    let lease = Arc::new(LeaseLog::open(
        &cfg.out_dir.join("lease.log"),
        cfg.ttl_ms,
        cfg.quarantine_k,
    )?);
    let manifest =
        CheckpointManifest::open(&cfg.out_dir.join(format!("worker-{}.ckpt", cfg.worker_id)))?;
    let alone = AloneIpcCache::new();
    // Fleet-shared alone-IPC store: without it every worker would
    // re-simulate the same alone runs the others already did, and the
    // fleet's total work would grow with N instead of staying serial-
    // equivalent.
    let alone_store = AloneStore::open(&cfg.out_dir.join("alone.log"))?;
    let worker_name = format!("w{}.{}", cfg.worker_id, cfg.incarnation);
    let pid = std::process::id();
    let rules = kill_rules(cfg.worker_id, cfg.incarnation);
    let poison = std::env::var(POISON_ENV).ok();
    let cells = &cfg.grid.cells;
    let keys = cfg.grid.keys();
    // Start each worker's scan at a different cell so the fleet fans
    // out instead of convoying on the first unclaimed cells.
    let rotation = if cells.is_empty() {
        0
    } else {
        (cfg.worker_id as usize * 7 + cfg.incarnation as usize) % cells.len()
    };

    let mut summary = WorkerSummary::default();
    let mut claims_made = 0u32;
    'scan: loop {
        if cfg.cancel.is_cancelled() {
            summary.interrupted = true;
            return Ok(summary);
        }
        let snap = lease.snapshot()?;
        if keys.iter().all(|k| snap.resolved(k)) {
            return Ok(summary);
        }
        for i in 0..cells.len() {
            let cell = &cells[(rotation + i) % cells.len()];
            if cfg.cancel.is_cancelled() {
                continue 'scan;
            }
            if !snap.claimable(&cell.key) {
                continue;
            }
            let epoch = match lease.try_claim(&cell.key, &worker_name, pid)? {
                ClaimOutcome::Won { epoch, .. } => epoch,
                // The snapshot was stale; someone beat us to it.
                _ => continue,
            };
            claims_made += 1;
            for rule in &rules {
                if rule.nth_claim == claims_made {
                    match rule.mode {
                        // SIGKILL-class death holding a fresh lease: the
                        // cell must come back via a steal after one TTL.
                        KillMode::AfterClaim => std::process::abort(),
                        // Ctrl-C mid-claim: the cell unwinds at its
                        // first quantum and the lease is released.
                        KillMode::Interrupt => cfg.cancel.cancel(),
                        KillMode::AfterRecord => {}
                    }
                }
            }
            let kill_after_record = rules
                .iter()
                .any(|r| r.nth_claim == claims_made && r.mode == KillMode::AfterRecord);
            let poisoned = poison.as_deref() == Some(cell.label.as_str());
            match run_cell(
                cfg,
                &lease,
                &manifest,
                &worker_name,
                cell,
                epoch,
                poisoned,
                kill_after_record,
                &alone,
                &alone_store,
            )? {
                CellEnd::Completed => {
                    summary.completed += 1;
                    cfg.cancel.note_completed();
                }
                CellEnd::Failed => summary.failed += 1,
                CellEnd::Abandoned => summary.abandoned += 1,
                CellEnd::Interrupted => {
                    summary.interrupted = true;
                    return Ok(summary);
                }
            }
            // Re-snapshot before scanning further: our pass is stale now.
            continue 'scan;
        }
        // Nothing claimable this pass: unresolved cells are held by
        // live leases (or freshly quarantined). Wait a fraction of the
        // TTL and rescan — if a holder died, its lease lapses and the
        // next pass steals it.
        std::thread::sleep(Duration::from_millis((cfg.ttl_ms / 4).clamp(10, 200)));
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    cfg: &WorkerConfig,
    lease: &Arc<LeaseLog>,
    manifest: &CheckpointManifest,
    worker_name: &str,
    cell: &crate::shard::grid::ExploreCell,
    epoch: u64,
    poisoned: bool,
    kill_after_record: bool,
    alone: &AloneIpcCache,
    alone_store: &AloneStore,
) -> std::io::Result<CellEnd> {
    let stolen = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let lease = lease.clone();
        let key = cell.key.clone();
        let worker = worker_name.to_string();
        let stolen = stolen.clone();
        let hb_stop = hb_stop.clone();
        let interval = Duration::from_millis((cfg.ttl_ms / 3).max(1));
        std::thread::spawn(move || {
            let tick = Duration::from_millis(5);
            let mut since_renew = Duration::ZERO;
            while !hb_stop.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                since_renew += tick;
                if since_renew < interval {
                    continue;
                }
                since_renew = Duration::ZERO;
                match lease.renew(&key, &worker, epoch) {
                    Ok(RenewOutcome::Renewed { .. }) => {}
                    Ok(RenewOutcome::Lost) => {
                        // Superseded: stop the simulation at its next
                        // quantum; the thief owns the cell now.
                        stolen.store(true, Ordering::SeqCst);
                        return;
                    }
                    // An I/O hiccup on a heartbeat is survivable — the
                    // next tick retries; worst case the lease lapses
                    // and the cell is stolen, which is safe.
                    Err(_) => {}
                }
            }
        })
    };

    // Resolve this cell's alone runs through the fleet-shared store,
    // one benchmark at a time: reload the store right before each
    // (cheap — a few KiB), reuse a sibling's published IPC when
    // present, otherwise simulate the alone run now and publish it
    // immediately. Publishing per run rather than per cell shrinks the
    // window in which two workers duplicate the same alone run from a
    // whole cell to one alone simulation. Under the heartbeat, so the
    // lease stays renewed while the alone runs execute.
    for spec in &cell.mix.specs {
        if alone.peek(&cell.config, spec.name).is_some() {
            continue;
        }
        let key = alone_key(&cell.config, spec.name, cfg.grid.instructions);
        match alone_store.load().unwrap_or_default().get(&key) {
            Some(&ipc) => alone.seed(&cell.config, spec.name, ipc),
            None => {
                let ipc = alone.ipc(&cell.config, spec.name, cfg.grid.instructions);
                // A failed publish only costs a sibling one redundant
                // simulation; not worth failing the cell over.
                let _ = alone_store.record(&key, ipc);
            }
        }
    }

    let stop_flags = [
        (cfg.cancel.flag(), StopCause::Cancelled),
        (stolen.clone(), StopCause::Cancelled),
    ];
    let armed = ScopedStop::install(&stop_flags);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if poisoned {
            panic!("poisoned cell (injected via {POISON_ENV})");
        }
        run_workload(
            &cell.config,
            cell.policy,
            &cell.mix,
            cfg.grid.instructions,
            alone,
        )
    }));
    drop(armed);
    hb_stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();

    match outcome {
        Ok(run) => {
            if stolen.load(Ordering::SeqCst) {
                // Lost the lease in the final quanta: the thief will
                // produce (or already produced) this result. Recording
                // ours too would be harmless — duplicates reconcile —
                // but the contract is that a lost lease records nothing.
                eprintln!(
                    "[{worker_name}] {}: finished after steal, abandoned",
                    cell.label
                );
                return Ok(CellEnd::Abandoned);
            }
            manifest.record(&cell.key, &run);
            if kill_after_record {
                // Injected crash in the record→done window: the lease
                // lapses, the cell is stolen and re-run, and the merge
                // must reconcile the duplicate bit-identically.
                std::process::abort();
            }
            lease.complete(&cell.key, worker_name, epoch)?;
            eprintln!("[{worker_name}] {}: completed", cell.label);
            Ok(CellEnd::Completed)
        }
        Err(payload) => {
            let kind = classify(payload.as_ref());
            let message = panic_message(payload);
            match kind {
                CellErrorKind::Cancelled if stolen.load(Ordering::SeqCst) => {
                    eprintln!("[{worker_name}] {}: lease stolen, abandoned", cell.label);
                    Ok(CellEnd::Abandoned)
                }
                CellErrorKind::Cancelled => {
                    // Ctrl-C: hand the cell back gracefully so siblings
                    // can claim it immediately instead of after a TTL.
                    lease.release(&cell.key, worker_name, epoch)?;
                    eprintln!(
                        "[{worker_name}] {}: interrupted, lease released",
                        cell.label
                    );
                    Ok(CellEnd::Interrupted)
                }
                CellErrorKind::Panicked | CellErrorKind::DeadlineExceeded => {
                    let fails = lease.fail(&cell.key, worker_name, epoch, &message)?;
                    eprintln!(
                        "[{worker_name}] {}: failed ({message}); fleet-wide failure {fails}/{}",
                        cell.label, cfg.quarantine_k
                    );
                    Ok(CellEnd::Failed)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::grid::explore_grid;
    use std::sync::Mutex;

    /// Tests here read or write the fault-injection environment, which
    /// is process-global — serialize them so a kill plan set by one test
    /// can never leak into another's `run_worker`.
    static ENV_GUARD: Mutex<()> = Mutex::new(());

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dap-worker-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn kill_rules_parse_and_filter() {
        let _env = crate::exec::lock_unpoisoned(&ENV_GUARD);
        std::env::set_var(
            KILL_ENV,
            "7:1:2:after-claim; 8:1:1:interrupt;bad;8:1:x:interrupt",
        );
        let r7 = kill_rules(7, 1);
        assert_eq!(r7.len(), 1);
        assert_eq!(r7[0].nth_claim, 2);
        assert_eq!(r7[0].mode, KillMode::AfterClaim);
        let r8 = kill_rules(8, 1);
        assert_eq!(r8.len(), 1);
        assert_eq!(r8[0].mode, KillMode::Interrupt);
        assert!(kill_rules(9, 1).is_empty());
        assert!(kill_rules(7, 2).is_empty(), "incarnation-scoped");
        std::env::remove_var(KILL_ENV);
    }

    /// A single in-process worker drains a tiny grid end to end: every
    /// cell completed, lease log resolved, manifest populated.
    #[test]
    fn single_worker_drains_a_tiny_grid() {
        let _env = crate::exec::lock_unpoisoned(&ENV_GUARD);
        let dir = temp_dir("drain");
        let mut grid = explore_grid("smoke", 2_000).unwrap();
        grid.cells.truncate(3);
        let cfg = WorkerConfig {
            out_dir: dir.clone(),
            worker_id: 0,
            incarnation: 1,
            grid: grid.clone(),
            ttl_ms: 2_000,
            quarantine_k: 3,
            cancel: CancelToken::new(),
        };
        let summary = run_worker(&cfg).unwrap();
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.failed, 0);
        assert!(!summary.interrupted);
        let manifest = CheckpointManifest::open(&dir.join("worker-0.ckpt")).unwrap();
        assert_eq!(manifest.len(), 3);
        for key in grid.keys() {
            assert!(manifest.lookup(&key).is_some());
        }
        // Idempotent: a re-run finds everything resolved and does nothing.
        let again = run_worker(&cfg).unwrap();
        assert_eq!(again.completed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_worker_releases_and_exits_interrupted() {
        let _env = crate::exec::lock_unpoisoned(&ENV_GUARD);
        let dir = temp_dir("cancel");
        let mut grid = explore_grid("smoke", 2_000).unwrap();
        grid.cells.truncate(3);
        let cancel = CancelToken::new();
        // Deterministic Ctrl-C after one completed cell (the PR-4 seam).
        cancel.cancel_after(1);
        let cfg = WorkerConfig {
            out_dir: dir.clone(),
            worker_id: 0,
            incarnation: 1,
            grid,
            ttl_ms: 2_000,
            quarantine_k: 3,
            cancel,
        };
        let summary = run_worker(&cfg).unwrap();
        assert!(summary.interrupted);
        assert_eq!(summary.completed, 1);
        // No lease left dangling: the remaining cells are immediately
        // claimable by a successor (no TTL wait), and the finished cell
        // is resolved.
        let lease = LeaseLog::open(&dir.join("lease.log"), 2_000, 3).unwrap();
        let snap = lease.snapshot().unwrap();
        let resolved = snap.cells.values().filter(|c| c.done).count();
        assert_eq!(resolved, 1);
        assert!(snap
            .cells
            .values()
            .all(|c| c.done || c.holder_expires_ms.is_none()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_cell_is_quarantined_not_crash_looped() {
        let _env = crate::exec::lock_unpoisoned(&ENV_GUARD);
        let dir = temp_dir("poison");
        let mut grid = explore_grid("smoke", 2_000).unwrap();
        grid.cells.truncate(2);
        let poison_label = grid.cells[0].label.clone();
        std::env::set_var(POISON_ENV, &poison_label);
        let cfg = WorkerConfig {
            out_dir: dir.clone(),
            worker_id: 0,
            incarnation: 1,
            grid: grid.clone(),
            ttl_ms: 2_000,
            quarantine_k: 2,
            cancel: CancelToken::new(),
        };
        let summary = run_worker(&cfg).unwrap();
        std::env::remove_var(POISON_ENV);
        assert_eq!(summary.completed, 1, "the healthy cell completes");
        assert_eq!(summary.failed, 2, "poison fails K times, then quarantine");
        let lease = LeaseLog::open(&dir.join("lease.log"), 2_000, 2).unwrap();
        let snap = lease.snapshot().unwrap();
        let q = snap.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, grid.cells[0].key);
        assert!(q[0].2.as_deref().unwrap().contains("poisoned cell"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
