//! Multi-process, crash-tolerant design-space exploration.
//!
//! N independent **worker processes** cooperate through the filesystem
//! alone — no daemon, no sockets. The shared state is two append-only
//! JSONL files in the exploration's output directory:
//!
//! - `lease.log` — the [`LeaseLog`]: who is working on which grid cell.
//!   A worker *claims* a cell by appending a lease record before
//!   simulating it, renews the lease from a heartbeat thread while the
//!   cell runs, and appends `done` / `fail` / `release` when it ends.
//!   Any worker may **steal** a cell whose lease expired, so a worker
//!   SIGKILLed mid-cell delays that cell by one lease TTL instead of
//!   orphaning it forever.
//! - `worker-<id>.ckpt` — each worker's private [`CheckpointManifest`]
//!   of finished cells (private so a torn write can never corrupt a
//!   sibling's results).
//!
//! Around the workers:
//!
//! - [`supervise`] (the `dapctl explore` supervisor) spawns the fleet,
//!   restarts crashed workers with bounded, seeded-jitter exponential
//!   backoff, and never restarts a worker that exited via Ctrl-C.
//! - A cell that keeps killing its claimants is **quarantined** after
//!   `quarantine_k` recorded failures instead of crash-looping the
//!   fleet; the merge reports it distinctly with its last error.
//! - [`merge_worker_manifests`] folds the worker manifests into one
//!   verified result set: lenient per-file loading (torn tails are
//!   skipped and counted), and any cell two workers both finished must
//!   be **bit-identical** across them — divergence is a hard error,
//!   because the simulations are deterministic and a mismatch means
//!   corruption or a version skew, not noise.
//!
//! All claim arbitration rides on `flock(2)` (see the `dap-flock`
//! crate): each lease operation holds an exclusive advisory lock on the
//! log across its read-validate-append cycle, and the kernel drops the
//! lock when a holder dies — even by SIGKILL — so there is no stale-lock
//! recovery path to get wrong.
//!
//! [`CheckpointManifest`]: crate::checkpoint::CheckpointManifest

mod alone;
mod grid;
mod lease;
mod merge;
mod pareto;
mod supervisor;
mod worker;

pub use grid::{explore_grid, grid_names, ExploreCell, ExploreGrid};
pub use lease::{
    CellSummary, ClaimOutcome, Clock, LeaseLog, LeaseSnapshot, ManualClock, RenewOutcome, WallClock,
};
pub use merge::{
    live_fleet_exposition, merge_worker_manifests, write_merged_manifest, MergeError, MergeReport,
};
pub use pareto::{pareto_points, pareto_report, ParetoPoint};
pub use supervisor::{supervise, supervise_with_tick, FleetOutcome, SupervisorConfig};
pub use worker::{run_worker, WorkerConfig, WorkerSummary, KILL_ENV, POISON_ENV};
