//! Traced experiment execution: window-trace recording and metrics
//! aggregation over the parallel grid, plus run-artifact export.
//!
//! Each `(variant, mix)` unit gets its **own** [`WindowTraceRecorder`] —
//! traces are per-run data, and giving each unit a private recorder keeps
//! the parallel grid deterministic (no cross-thread interleaving can
//! reach a trace). Each *variant* shares one [`MetricsRegistry`] across
//! all its mixes and worker threads; that is safe because counter and
//! histogram totals are sums of commutative atomic adds, so the final
//! snapshot is identical at any thread count
//! (`tests/determinism.rs::traced_runs_stay_deterministic` proves it).
//!
//! Artifact output is controlled by two environment variables read by
//! [`artifact_dir_from_env`]:
//!
//! * `DAP_TELEMETRY=1` — figure binaries emit window-trace artifacts;
//! * `DAP_TELEMETRY_DIR=<dir>` — where (default `target/telemetry`).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dap_telemetry::export::{
    write_window_trace_csv, write_window_trace_jsonl, ArtifactError, TraceMeta,
};
use dap_telemetry::metrics::{MetricsRegistry, MetricsSnapshot};
use dap_telemetry::window::{WindowTrace, WindowTraceRecorder};
use mem_sim::{CacheKind, SubsystemTelemetry, System, SystemConfig};
use workloads::Mix;

use crate::exec::{ExperimentPlan, ParallelExecutor};
use crate::runner::{build_policy, AloneIpcCache, PolicyKind, WorkloadRun};

/// Ring capacity for per-run recorders: enough for every window of the
/// instruction budgets the figures use, without unbounded growth.
const TRACE_CAPACITY: usize = 1 << 16;

/// The architecture label stored in artifact headers.
pub fn architecture_label(config: &SystemConfig) -> &'static str {
    match &config.cache {
        CacheKind::None => "no-cache",
        CacheKind::Sectored { .. } => "sectored",
        CacheKind::Alloy { .. } => "alloy",
        CacheKind::Edram { .. } => "edram",
        CacheKind::FlatTier { .. } => "flat-tier",
    }
}

/// One traced simulation: the run outcome plus its window trace.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The run and its weighted speedup.
    pub run: WorkloadRun,
    /// The per-window DAP controller trace (empty for non-DAP policies —
    /// they have no controller to trace).
    pub trace: WindowTrace,
    /// The cycle-attribution profiler's per-window rollups (empty when
    /// profiling is disabled — `DAP_PROFILE_SAMPLE=0` or `telemetry-off`).
    pub profile: Vec<dap_core::ProfileWindow>,
}

/// Runs one mix under one policy with telemetry attached: a private
/// window-trace recorder plus subsystem metrics recorded into `registry`.
///
/// # Panics
///
/// Panics if the policy cannot run on the configuration's architecture
/// (same contract as [`crate::runner::run_mix`]).
pub fn run_workload_traced(
    config: &SystemConfig,
    kind: PolicyKind,
    mix: &Mix,
    instructions: u64,
    alone: &AloneIpcCache,
    registry: &MetricsRegistry,
) -> TracedRun {
    let policy = build_policy(kind, config).unwrap_or_else(|e| panic!("{e}"));
    let mut system = System::with_policy(config.clone(), mix.traces(), policy);
    let recorder = Arc::new(WindowTraceRecorder::new(TRACE_CAPACITY));
    system.attach_dap_sink(recorder.clone());
    system.attach_telemetry(SubsystemTelemetry::new(registry));
    let result = system.run(instructions);
    // Weighted speedup reuses the cached alone IPCs exactly like the
    // untraced path, so traced and untraced runs report identical numbers.
    let alone_ipcs: Vec<f64> = mix
        .specs
        .iter()
        .map(|s| alone.ipc(config, s.name, instructions))
        .collect();
    let weighted_speedup = result.weighted_speedup(&alone_ipcs);
    // Profile rollups must be read before `take()` clears both rings.
    let profile = recorder.profile_windows();
    TracedRun {
        run: WorkloadRun {
            result,
            weighted_speedup,
        },
        trace: recorder.take(),
        profile,
    }
}

/// Everything telemetry collected for one grid variant.
#[derive(Debug, Clone)]
pub struct VariantTelemetry {
    /// The variant's display label (policy/architecture).
    pub label: String,
    /// Architecture tag for artifact headers.
    pub arch: &'static str,
    /// Merged subsystem metrics across every mix of this variant.
    pub metrics: MetricsSnapshot,
    /// `(mix name, trace)` per mix, in mix order.
    pub traces: Vec<(String, WindowTrace)>,
    /// Cycle-attribution rollups per mix, in mix order (empty inner
    /// vectors when profiling is disabled).
    pub profiles: Vec<(String, Vec<dap_core::ProfileWindow>)>,
}

/// Runs `variants.len()` traced units per mix in parallel: the traced
/// analogue of [`crate::exec::run_variant_grid`]. One metrics registry is
/// attached per *variant* (shared across that variant's mixes and worker
/// threads); each unit still gets its own window-trace recorder. Returns
/// per-mix runs in variant order plus per-variant telemetry.
pub fn run_variant_grid_traced(
    variants: &[(&SystemConfig, PolicyKind, &str)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
) -> (Vec<Vec<WorkloadRun>>, Vec<VariantTelemetry>) {
    let _progress = crate::progress::grid_started(mixes.len() * variants.len());
    let registries: Vec<MetricsRegistry> =
        variants.iter().map(|_| MetricsRegistry::new()).collect();
    let mut plan = ExperimentPlan::new();
    for mix in mixes {
        for (v, &(config, kind, _)) in variants.iter().enumerate() {
            let registry = &registries[v];
            plan.add(move || {
                let traced = run_workload_traced(config, kind, mix, instructions, alone, registry);
                crate::progress::cell_finished(crate::progress::windows_of(&traced.run));
                traced
            });
        }
    }
    let mut traced = ParallelExecutor::from_env().run(plan).into_iter();
    let mut per_mix: Vec<Vec<WorkloadRun>> = Vec::with_capacity(mixes.len());
    let mut traces: Vec<Vec<(String, WindowTrace)>> = variants.iter().map(|_| Vec::new()).collect();
    let mut profiles: Vec<Vec<(String, Vec<dap_core::ProfileWindow>)>> =
        variants.iter().map(|_| Vec::new()).collect();
    for mix in mixes {
        let mut row = Vec::with_capacity(variants.len());
        for (variant_traces, variant_profiles) in traces.iter_mut().zip(profiles.iter_mut()) {
            // invariant: run() returns one result per added task; the
            // plan added mixes × variants tasks in this same order.
            let t = traced.next().expect("one result per unit");
            variant_traces.push((mix.name.clone(), t.trace));
            variant_profiles.push((mix.name.clone(), t.profile));
            row.push(t.run);
        }
        per_mix.push(row);
    }
    let telemetry = variants
        .iter()
        .zip(registries.iter())
        .zip(traces.into_iter().zip(profiles))
        .map(
            |((&(config, _, label), registry), (traces, profiles))| VariantTelemetry {
                label: label.to_string(),
                arch: architecture_label(config),
                metrics: registry.snapshot(),
                traces,
                profiles,
            },
        )
        .collect();
    (per_mix, telemetry)
}

/// Where figure binaries write telemetry artifacts, when enabled:
/// `Some(dir)` iff `DAP_TELEMETRY` is set to something other than
/// `0`/`false`/empty (directory from `DAP_TELEMETRY_DIR`, default
/// `target/telemetry`). Also answers `None` under `telemetry-off` —
/// a disabled build would only write empty traces.
pub fn artifact_dir_from_env() -> Option<PathBuf> {
    if !dap_telemetry::enabled() {
        return None;
    }
    let flag = std::env::var("DAP_TELEMETRY").ok()?;
    if flag.is_empty() || flag == "0" || flag.eq_ignore_ascii_case("false") {
        return None;
    }
    Some(
        std::env::var("DAP_TELEMETRY_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/telemetry")),
    )
}

/// Writes one variant's window traces as versioned JSONL + CSV pairs
/// under `dir` (`<dir>/<figure>/<variant>/<mix>.{jsonl,csv}`), creating
/// directories as needed. Returns the paths written.
///
/// # Errors
///
/// An [`ArtifactError`] naming the offending path if any write fails.
pub fn export_variant_traces(
    dir: &Path,
    figure: &str,
    window_cycles: u32,
    variant: &VariantTelemetry,
) -> Result<Vec<PathBuf>, ArtifactError> {
    let mut written = Vec::new();
    let safe = |s: &str| s.replace(['/', ' '], "-");
    for (mix_name, trace) in &variant.traces {
        if trace.records.is_empty() {
            continue; // non-DAP variants have no controller windows
        }
        let meta = TraceMeta {
            label: format!("{figure}/{}/{mix_name}", variant.label),
            arch: variant.arch.to_string(),
            window_cycles,
        };
        // Mix names contain dots ("astar.BigLakes"), so append the
        // extension rather than `with_extension` (which would truncate
        // at the last dot and collide e.g. soplex.ref with soplex.pds).
        let base = dir.join(safe(figure)).join(safe(&variant.label));
        let jsonl = base.join(format!("{}.jsonl", safe(mix_name)));
        let csv = base.join(format!("{}.csv", safe(mix_name)));
        write_window_trace_jsonl(&jsonl, &meta, trace)?;
        write_window_trace_csv(&csv, &meta, trace)?;
        written.push(jsonl);
        written.push(csv);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload;
    use workloads::{rate_mix, spec};

    const INSTR: u64 = 25_000;

    #[test]
    fn traced_run_matches_untraced_numbers() {
        let config = SystemConfig::sectored_dram_cache(2);
        let mix = rate_mix(spec("libquantum").unwrap(), 2);
        let alone = AloneIpcCache::new();
        let registry = MetricsRegistry::new();
        let traced = run_workload_traced(&config, PolicyKind::Dap, &mix, INSTR, &alone, &registry);
        let plain = run_workload(&config, PolicyKind::Dap, &mix, INSTR, &alone);
        assert_eq!(traced.run.result.stats, plain.result.stats);
        assert_eq!(
            traced.run.weighted_speedup.to_bits(),
            plain.weighted_speedup.to_bits(),
            "telemetry must not perturb the simulation"
        );
        if dap_telemetry::enabled() {
            assert!(!traced.trace.records.is_empty(), "DAP windows recorded");
            let snap = registry.snapshot();
            assert!(snap.counters["mem.demand_reads"] > 0);
            assert!(snap.histograms["mem.read_latency"].count > 0);
        }
    }

    #[test]
    fn baseline_runs_trace_no_windows() {
        let config = SystemConfig::sectored_dram_cache(2);
        let mix = rate_mix(spec("libquantum").unwrap(), 2);
        let alone = AloneIpcCache::new();
        let registry = MetricsRegistry::new();
        let traced = run_workload_traced(
            &config,
            PolicyKind::Baseline,
            &mix,
            INSTR,
            &alone,
            &registry,
        );
        assert!(
            traced.trace.records.is_empty(),
            "no DAP controller, no windows"
        );
    }

    #[test]
    fn grid_collects_per_variant_telemetry() {
        let config = SystemConfig::sectored_dram_cache(2);
        let mixes = vec![rate_mix(spec("libquantum").unwrap(), 2)];
        let alone = AloneIpcCache::new();
        let variants: Vec<(&SystemConfig, PolicyKind, &str)> = vec![
            (&config, PolicyKind::Baseline, "base"),
            (&config, PolicyKind::Dap, "dap"),
        ];
        let (per_mix, telemetry) = run_variant_grid_traced(&variants, &mixes, INSTR, &alone);
        assert_eq!(per_mix.len(), 1);
        assert_eq!(per_mix[0].len(), 2);
        assert_eq!(telemetry.len(), 2);
        assert_eq!(telemetry[0].label, "base");
        assert_eq!(telemetry[1].arch, "sectored");
        assert_eq!(telemetry[1].traces.len(), 1);
        if dap_telemetry::enabled() {
            assert!(!telemetry[1].traces[0].1.records.is_empty());
        }
    }

    #[test]
    fn export_writes_artifacts_under_nested_dirs() {
        if !dap_telemetry::enabled() {
            return;
        }
        let config = SystemConfig::sectored_dram_cache(2);
        let mixes = vec![rate_mix(spec("libquantum").unwrap(), 2)];
        let alone = AloneIpcCache::new();
        let variants: Vec<(&SystemConfig, PolicyKind, &str)> =
            vec![(&config, PolicyKind::Dap, "dap")];
        let (_, telemetry) = run_variant_grid_traced(&variants, &mixes, INSTR, &alone);
        let dir = std::env::temp_dir().join(format!("dap-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = export_variant_traces(&dir, "fig-test", 64, &telemetry[0]).expect("export");
        assert_eq!(written.len(), 2, "one jsonl + one csv");
        for path in &written {
            assert!(path.exists(), "{} missing", path.display());
        }
        let (meta, trace) =
            dap_telemetry::export::read_window_trace_jsonl(&written[0]).expect("parse back");
        assert_eq!(meta.arch, "sectored");
        assert!(!trace.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
