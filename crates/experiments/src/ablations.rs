//! Ablation studies for the design choices DESIGN.md calls out, beyond
//! the paper's own Table I (window size / efficiency):
//!
//! * [`ablation_thread_aware`] — the thread-aware IFRM extension the paper
//!   sketches in Section IV-A, on mixes of latency-sensitive and
//!   bandwidth-hungry threads;
//! * [`ablation_write_batch`] — the DRAM write-batching depth (channel
//!   turnaround amortization vs read-blocking bursts);
//! * [`ablation_prefetch_degree`] — the cores' stride-prefetch degree
//!   (bandwidth demand shaping upstream of DAP).

use mem_sim::dram::{DramConfig, RefreshTiming};
use mem_sim::{CacheKind, SystemConfig};
use workloads::heterogeneous_mixes;

use crate::metrics::{FigureResult, Row};
use crate::runner::{run_workload, AloneIpcCache, PolicyKind};

use crate::figures::sensitive_mixes;

/// Thread-aware IFRM vs plain DAP on the heterogeneous (dissimilar) mixes,
/// where latency-sensitive and bandwidth-hungry threads share the system.
/// Columns: normalized weighted speedup of each variant, and the *minimum*
/// per-core speedup (a fairness floor: thread-aware IFRM protects the
/// latency-sensitive threads' hits).
pub fn ablation_thread_aware(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let mut alone = AloneIpcCache::new();
    let mut rows = Vec::new();
    // The dissimilar mixes are the second half of the heterogeneous set.
    for mix in heterogeneous_mixes().into_iter().skip(13).take(7) {
        let base = run_workload(
            &config,
            PolicyKind::Baseline,
            &mix,
            instructions,
            &mut alone,
        );
        let dap = run_workload(&config, PolicyKind::Dap, &mix, instructions, &mut alone);
        let ta = run_workload(
            &config,
            PolicyKind::ThreadAwareDap,
            &mix,
            instructions,
            &mut alone,
        );
        let floor = |r: &crate::runner::WorkloadRun| {
            r.result
                .per_core
                .iter()
                .zip(&base.result.per_core)
                .map(|(a, b)| a.ipc() / b.ipc())
                .fold(f64::INFINITY, f64::min)
        };
        rows.push(Row::new(
            mix.name.clone(),
            vec![
                dap.weighted_speedup / base.weighted_speedup,
                ta.weighted_speedup / base.weighted_speedup,
                floor(&dap),
                floor(&ta),
            ],
        ));
    }
    FigureResult {
        id: "Ablation A",
        title: "Thread-aware IFRM vs plain DAP on dissimilar mixes".into(),
        columns: vec![
            "DAP WS".into(),
            "TA-DAP WS".into(),
            "DAP floor".into(),
            "TA floor".into(),
        ],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// DRAM write-batch depth sweep: 4 / 16 (default) / 64 buffered writes per
/// drain, baseline and DAP geomean speedups over the depth-16 baseline.
pub fn ablation_write_batch(instructions: u64) -> FigureResult {
    let mut alone = AloneIpcCache::new();
    let reference = SystemConfig::sectored_dram_cache(8);
    let mut rows = Vec::new();
    for batch in [4usize, 16, 64] {
        let mut config = reference.clone();
        config.mm.write_batch = batch;
        if let CacheKind::Sectored { dram, .. } = &mut config.cache {
            let mut d: DramConfig = dram.clone();
            d.write_batch = batch;
            *dram = d;
        }
        let mut base_ws = Vec::new();
        let mut dap_ws = Vec::new();
        for mix in sensitive_mixes(8).into_iter().take(4) {
            let refr = run_workload(
                &reference,
                PolicyKind::Baseline,
                &mix,
                instructions,
                &mut alone,
            );
            let base = run_workload(
                &config,
                PolicyKind::Baseline,
                &mix,
                instructions,
                &mut alone,
            );
            let dap = run_workload(&config, PolicyKind::Dap, &mix, instructions, &mut alone);
            base_ws.push(base.weighted_speedup / refr.weighted_speedup);
            dap_ws.push(dap.weighted_speedup / refr.weighted_speedup);
        }
        rows.push(Row::new(
            format!("batch={batch}"),
            vec![
                crate::metrics::geomean(base_ws),
                crate::metrics::geomean(dap_ws),
            ],
        ));
    }
    FigureResult {
        id: "Ablation B",
        title: "Write-batch depth: baseline and DAP vs the depth-16 baseline".into(),
        columns: vec!["baseline WS".into(), "DAP WS".into()],
        rows,
        summary: vec![],
    }
}

/// DRAM refresh on/off: the presets fold refresh into the bandwidth
/// efficiency `E` (as the paper does); this ablation models it explicitly
/// (JEDEC tREFI/tRFC) on both the cache array and main memory and checks
/// that DAP's benefit survives the extra pressure.
pub fn ablation_refresh(instructions: u64) -> FigureResult {
    let mut alone = AloneIpcCache::new();
    let reference = SystemConfig::sectored_dram_cache(8);
    let mut rows = Vec::new();
    for enabled in [false, true] {
        let mut config = reference.clone();
        if enabled {
            config.mm = config.mm.with_refresh(RefreshTiming::ddr4());
            if let CacheKind::Sectored { dram, .. } = &mut config.cache {
                *dram = dram.clone().with_refresh(RefreshTiming::ddr4());
            }
        }
        let mut base_ws = Vec::new();
        let mut dap_ws = Vec::new();
        for mix in sensitive_mixes(8).into_iter().take(4) {
            let refr = run_workload(
                &reference,
                PolicyKind::Baseline,
                &mix,
                instructions,
                &mut alone,
            );
            let base = run_workload(
                &config,
                PolicyKind::Baseline,
                &mix,
                instructions,
                &mut alone,
            );
            let dap = run_workload(&config, PolicyKind::Dap, &mix, instructions, &mut alone);
            base_ws.push(base.weighted_speedup / refr.weighted_speedup);
            dap_ws.push(dap.weighted_speedup / refr.weighted_speedup);
        }
        rows.push(Row::new(
            if enabled { "refresh on" } else { "refresh off" },
            vec![
                crate::metrics::geomean(base_ws),
                crate::metrics::geomean(dap_ws),
            ],
        ));
    }
    FigureResult {
        id: "Ablation E",
        title: "Explicit DRAM refresh: baseline and DAP vs the no-refresh baseline".into(),
        columns: vec!["baseline WS".into(), "DAP WS".into()],
        rows,
        summary: vec![],
    }
}

/// Stride-prefetch degree sweep {0, 2, 4}: how upstream bandwidth demand
/// shaping changes what DAP has to work with.
pub fn ablation_prefetch_degree(instructions: u64) -> FigureResult {
    let mut alone = AloneIpcCache::new();
    let reference = SystemConfig::sectored_dram_cache(8);
    let mut rows = Vec::new();
    for degree in [0u32, 2, 4] {
        let mut config = reference.clone();
        config.prefetch_degree = degree;
        let mut base_ws = Vec::new();
        let mut dap_ws = Vec::new();
        for mix in sensitive_mixes(8).into_iter().take(4) {
            let refr = run_workload(
                &reference,
                PolicyKind::Baseline,
                &mix,
                instructions,
                &mut alone,
            );
            let base = run_workload(
                &config,
                PolicyKind::Baseline,
                &mix,
                instructions,
                &mut alone,
            );
            let dap = run_workload(&config, PolicyKind::Dap, &mix, instructions, &mut alone);
            base_ws.push(base.weighted_speedup / refr.weighted_speedup);
            dap_ws.push(dap.weighted_speedup / refr.weighted_speedup);
        }
        rows.push(Row::new(
            format!("degree={degree}"),
            vec![
                crate::metrics::geomean(base_ws),
                crate::metrics::geomean(dap_ws),
            ],
        ));
    }
    FigureResult {
        id: "Ablation C",
        title: "Stride-prefetch degree: baseline and DAP vs the degree-2 baseline".into(),
        columns: vec!["baseline WS".into(), "DAP WS".into()],
        rows,
        summary: vec![],
    }
}
