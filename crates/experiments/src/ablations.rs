//! Ablation studies for the design choices DESIGN.md calls out, beyond
//! the paper's own Table I (window size / efficiency):
//!
//! * [`ablation_thread_aware`] — the thread-aware IFRM extension the paper
//!   sketches in Section IV-A, on mixes of latency-sensitive and
//!   bandwidth-hungry threads;
//! * [`ablation_write_batch`] — the DRAM write-batching depth (channel
//!   turnaround amortization vs read-blocking bursts);
//! * [`ablation_prefetch_degree`] — the cores' stride-prefetch degree
//!   (bandwidth demand shaping upstream of DAP).

use mem_sim::dram::{DramConfig, RefreshTiming};
use mem_sim::{CacheKind, SystemConfig};
use workloads::{heterogeneous_mixes, Mix};

use crate::exec::run_variant_grid;
use crate::metrics::{geomean, FigureResult, Row};
use crate::runner::{AloneIpcCache, PolicyKind, WorkloadRun};

use crate::figures::sensitive_mixes;

/// Thread-aware IFRM vs plain DAP on the heterogeneous (dissimilar) mixes,
/// where latency-sensitive and bandwidth-hungry threads share the system.
/// Columns: normalized weighted speedup of each variant, and the *minimum*
/// per-core speedup (a fairness floor: thread-aware IFRM protects the
/// latency-sensitive threads' hits).
pub fn ablation_thread_aware(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let alone = AloneIpcCache::new();
    // The dissimilar mixes are the second half of the heterogeneous set.
    let mixes: Vec<Mix> = heterogeneous_mixes().into_iter().skip(13).take(7).collect();
    let grid = run_variant_grid(
        &[
            (&config, PolicyKind::Baseline),
            (&config, PolicyKind::Dap),
            (&config, PolicyKind::ThreadAwareDap),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, dap, ta] = &runs[..] else {
                unreachable!()
            };
            let floor = |r: &WorkloadRun| {
                r.result
                    .per_core
                    .iter()
                    .zip(&base.result.per_core)
                    .map(|(a, b)| a.ipc() / b.ipc())
                    .fold(f64::INFINITY, f64::min)
            };
            Row::new(
                mix.name.clone(),
                vec![
                    dap.weighted_speedup / base.weighted_speedup,
                    ta.weighted_speedup / base.weighted_speedup,
                    floor(dap),
                    floor(ta),
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Ablation A",
        title: "Thread-aware IFRM vs plain DAP on dissimilar mixes".into(),
        columns: vec![
            "DAP WS".into(),
            "TA-DAP WS".into(),
            "DAP floor".into(),
            "TA floor".into(),
        ],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// One sweep point of a "reference vs modified config" ablation: runs
/// (reference baseline, modified baseline, modified DAP) over the first
/// four bandwidth-sensitive mixes and returns the geomean speedups of the
/// modified baseline and modified DAP over the reference baseline.
fn sweep_point(
    reference: &SystemConfig,
    config: &SystemConfig,
    instructions: u64,
    alone: &AloneIpcCache,
) -> (f64, f64) {
    let mixes: Vec<Mix> = sensitive_mixes(8).into_iter().take(4).collect();
    let grid = run_variant_grid(
        &[
            (reference, PolicyKind::Baseline),
            (config, PolicyKind::Baseline),
            (config, PolicyKind::Dap),
        ],
        &mixes,
        instructions,
        alone,
    );
    let mut base_ws = Vec::new();
    let mut dap_ws = Vec::new();
    for runs in &grid {
        let [refr, base, dap] = &runs[..] else {
            unreachable!()
        };
        base_ws.push(base.weighted_speedup / refr.weighted_speedup);
        dap_ws.push(dap.weighted_speedup / refr.weighted_speedup);
    }
    (geomean(base_ws), geomean(dap_ws))
}

/// DRAM write-batch depth sweep: 4 / 16 (default) / 64 buffered writes per
/// drain, baseline and DAP geomean speedups over the depth-16 baseline.
pub fn ablation_write_batch(instructions: u64) -> FigureResult {
    let alone = AloneIpcCache::new();
    let reference = SystemConfig::sectored_dram_cache(8);
    let mut rows = Vec::new();
    for batch in [4usize, 16, 64] {
        let mut config = reference.clone();
        config.mm.write_batch = batch;
        if let CacheKind::Sectored { dram, .. } = &mut config.cache {
            let mut d: DramConfig = dram.clone();
            d.write_batch = batch;
            *dram = d;
        }
        let (base, dap) = sweep_point(&reference, &config, instructions, &alone);
        rows.push(Row::new(format!("batch={batch}"), vec![base, dap]));
    }
    FigureResult {
        id: "Ablation B",
        title: "Write-batch depth: baseline and DAP vs the depth-16 baseline".into(),
        columns: vec!["baseline WS".into(), "DAP WS".into()],
        rows,
        summary: vec![],
    }
}

/// DRAM refresh on/off: the presets fold refresh into the bandwidth
/// efficiency `E` (as the paper does); this ablation models it explicitly
/// (JEDEC tREFI/tRFC) on both the cache array and main memory and checks
/// that DAP's benefit survives the extra pressure.
pub fn ablation_refresh(instructions: u64) -> FigureResult {
    let alone = AloneIpcCache::new();
    let reference = SystemConfig::sectored_dram_cache(8);
    let mut rows = Vec::new();
    for enabled in [false, true] {
        let mut config = reference.clone();
        if enabled {
            config.mm = config.mm.with_refresh(RefreshTiming::ddr4());
            if let CacheKind::Sectored { dram, .. } = &mut config.cache {
                *dram = dram.clone().with_refresh(RefreshTiming::ddr4());
            }
        }
        let (base, dap) = sweep_point(&reference, &config, instructions, &alone);
        rows.push(Row::new(
            if enabled { "refresh on" } else { "refresh off" },
            vec![base, dap],
        ));
    }
    FigureResult {
        id: "Ablation E",
        title: "Explicit DRAM refresh: baseline and DAP vs the no-refresh baseline".into(),
        columns: vec!["baseline WS".into(), "DAP WS".into()],
        rows,
        summary: vec![],
    }
}

/// Stride-prefetch degree sweep {0, 2, 4}: how upstream bandwidth demand
/// shaping changes what DAP has to work with.
pub fn ablation_prefetch_degree(instructions: u64) -> FigureResult {
    let alone = AloneIpcCache::new();
    let reference = SystemConfig::sectored_dram_cache(8);
    let mut rows = Vec::new();
    for degree in [0u32, 2, 4] {
        let mut config = reference.clone();
        config.prefetch_degree = degree;
        let (base, dap) = sweep_point(&reference, &config, instructions, &alone);
        rows.push(Row::new(format!("degree={degree}"), vec![base, dap]));
    }
    FigureResult {
        id: "Ablation C",
        title: "Stride-prefetch degree: baseline and DAP vs the degree-2 baseline".into(),
        columns: vec!["baseline WS".into(), "DAP WS".into()],
        rows,
        summary: vec![],
    }
}
