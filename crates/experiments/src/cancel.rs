//! Grid-level cooperative cancellation.
//!
//! A [`CancelToken`] is a shared flag the experiment harness arms on
//! every simulation thread (via [`mem_sim::ScopedStop`]); tripping it —
//! from a Ctrl-C handler, a test hook, or [`CancelToken::cancel_after`]'s
//! deterministic countdown — stops every in-flight simulation at the
//! next window boundary and keeps the executor from starting new cells.
//! Cancelled cells surface as structured
//! [`CellError`](crate::exec::CellError)s, checkpointed progress is kept,
//! and a `DAP_RESUME` re-run completes the grid bit-identically.
//!
//! The [`global_cancel_token`] is the process-wide instance the CLI
//! binaries' Ctrl-C handler trips; [`ParallelExecutor::from_env`]
//! (`crate::exec`) attaches it automatically so every figure binary is
//! interruptible without plumbing.
//!
//! [`ParallelExecutor::from_env`]: crate::exec::ParallelExecutor::from_env

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Exit code for a run stopped by cancellation (the shell convention for
/// death-by-SIGINT: 128 + 2). Distinct from failure exit codes so
/// wrappers can tell "interrupted, resume later" from "broken".
pub const EXIT_INTERRUPTED: i32 = 130;

/// A shared cancellation flag for one experiment grid (cloning shares
/// the flag). See the module docs for how it stops a running grid.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Completed-cell countdown for [`Self::cancel_after`];
    /// `usize::MAX` = disarmed.
    countdown: Arc<AtomicUsize>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            countdown: Arc::new(AtomicUsize::new(usize::MAX)),
        }
    }

    /// Trips the token: in-flight simulations stop at their next window
    /// boundary, and no new cells start. Idempotent and thread-safe —
    /// async-signal use (a Ctrl-C handler) only stores one atomic.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The underlying flag, for installation as a
    /// [`mem_sim::ScopedStop`] stop flag.
    pub fn flag(&self) -> Arc<AtomicBool> {
        self.flag.clone()
    }

    /// Arms a deterministic trip after `completed` more cells finish
    /// (the cancellation-determinism tests use this to cut a grid at an
    /// exact cell count without timing races). `0` cancels immediately.
    pub fn cancel_after(&self, completed: usize) {
        self.countdown.store(completed, Ordering::SeqCst);
        if completed == 0 {
            self.cancel();
        }
    }

    /// Records one completed cell, tripping the token when an armed
    /// [`Self::cancel_after`] countdown hits zero. The
    /// [`ParallelExecutor`](crate::exec::ParallelExecutor) calls this
    /// after every cell; callers running cells outside the executor —
    /// the [`shard`](crate::shard) worker executes its claimed cells
    /// serially — must call it themselves for `cancel_after` to keep
    /// its deterministic meaning of "trip after N more completions".
    pub fn note_completed(&self) {
        let mut current = self.countdown.load(Ordering::SeqCst);
        while current != usize::MAX && current != 0 {
            match self.countdown.compare_exchange(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    if current == 1 {
                        self.cancel();
                    }
                    return;
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// The process-wide cancel token: the CLI binaries' Ctrl-C handler trips
/// it, and [`crate::exec::ParallelExecutor::from_env`] attaches it to
/// every grid automatically.
pub fn global_cancel_token() -> &'static CancelToken {
    static GLOBAL: OnceLock<CancelToken> = OnceLock::new();
    GLOBAL.get_or_init(CancelToken::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.flag().load(Ordering::SeqCst));
    }

    #[test]
    fn cancel_after_counts_completions() {
        let token = CancelToken::new();
        // Disarmed countdown: completions never trip.
        token.note_completed();
        assert!(!token.is_cancelled());
        token.cancel_after(2);
        token.note_completed();
        assert!(!token.is_cancelled());
        token.note_completed();
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_after_zero_trips_immediately() {
        let token = CancelToken::new();
        token.cancel_after(0);
        assert!(token.is_cancelled());
    }
}
