//! Property suite: the epoch-skipping kernel is bit-identical to the
//! per-quantum reference loop.
//!
//! `System::run_kernel` may only be an *optimization* of
//! `System::run_reference` — same `RunResult` (per-core cycles and
//! instructions, every `SimStats` counter, the DAP `DecisionStats`) and
//! the same window-by-window telemetry trace, bit for bit. This suite
//! drives both loops over a seeded random grid of system configurations
//! (architecture × sector size × policy × fault schedule × core count)
//! plus a set of hand-picked corners, and asserts exact equality of
//! everything both runs produce.

use std::sync::Arc;

use dap_telemetry::WindowTraceRecorder;
use experiments::runner::{build_policy, PolicyKind};
use mem_sim::{CacheKind, FaultSchedule, FaultTarget, System, SystemConfig};
use workloads::rng::SplitMix64;
use workloads::{bandwidth_sensitive, rate_mode};

const INSTR: u64 = 1_200;

/// Policies that are valid for a given architecture (everything
/// [`build_policy`] accepts on that cache kind).
fn policies_for(arch: usize) -> &'static [PolicyKind] {
    match arch {
        // Sectored: the full menu.
        0 => &[
            PolicyKind::Baseline,
            PolicyKind::Dap,
            PolicyKind::DapMeasured,
            PolicyKind::DapFwbWbOnly,
            PolicyKind::ThreadAwareDap,
            PolicyKind::Sbd,
            PolicyKind::SbdWt,
            PolicyKind::Batman,
        ],
        // Alloy.
        1 => &[PolicyKind::Baseline, PolicyKind::Dap, PolicyKind::Batman],
        // eDRAM.
        _ => &[PolicyKind::Baseline, PolicyKind::Dap, PolicyKind::Sbd],
    }
}

/// One random grid point: a config, a policy, and a workload index.
fn random_case(rng: &mut SplitMix64) -> (SystemConfig, PolicyKind, usize) {
    let cores = [1usize, 2, 4][rng.below(3) as usize];
    let arch = rng.below(3) as usize;
    let mut config = match arch {
        0 => SystemConfig::sectored_dram_cache(cores),
        1 => SystemConfig::alloy_cache(cores),
        _ => SystemConfig::edram_cache(cores, 64),
    };
    // Sector-size axis (sectored and eDRAM geometries).
    match &mut config.cache {
        CacheKind::Sectored {
            sector_bytes,
            tag_cache,
            ..
        } => {
            *sector_bytes = [512u64, 1024, 2048, 4096][rng.below(4) as usize];
            *tag_cache = rng.below(2) == 0;
        }
        CacheKind::Edram { sector_bytes, .. } => {
            *sector_bytes = [512u64, 1024, 2048][rng.below(3) as usize];
        }
        _ => {}
    }
    config.prefetch_degree = rng.below(3) as u32;
    // Fault-schedule axis: none / outage / throttle / refresh storm /
    // jitter, with windows sized so some runs stall long enough for the
    // epoch scheduler to actually skip.
    config.faults = match rng.below(5) {
        0 => None,
        1 => Some(FaultSchedule::new(rng.next_u64()).channel_outage(
            FaultTarget::MainMemory,
            0,
            rng.range_u64(1_000, 20_000),
            rng.range_u64(40_000, 200_000),
        )),
        2 => Some(FaultSchedule::new(rng.next_u64()).throttle(
            FaultTarget::Cache,
            rng.range_u64(2, 5) as u32,
            1,
            rng.range_u64(1_000, 10_000),
            rng.range_u64(50_000, 150_000),
        )),
        3 => Some(FaultSchedule::new(rng.next_u64()).refresh_storm(
            FaultTarget::Cache,
            2_000,
            rng.range_u64(100, 1_500),
            rng.range_u64(0, 5_000),
            rng.range_u64(60_000, 160_000),
        )),
        _ => Some(FaultSchedule::new(rng.next_u64()).latency_jitter(
            FaultTarget::MainMemory,
            rng.range_u64(10, 400),
            0,
            rng.range_u64(30_000, 120_000),
        )),
    };
    let menu = policies_for(arch);
    let policy = menu[rng.below(menu.len() as u64) as usize];
    let workload = rng.below(bandwidth_sensitive().len() as u64) as usize;
    (config, policy, workload)
}

/// Runs one case through the given loop; returns the run result and the
/// full window trace.
fn run_case(
    config: &SystemConfig,
    policy: PolicyKind,
    workload: usize,
    reference: bool,
) -> (mem_sim::RunResult, Vec<dap_core::WindowSnapshot>) {
    let spec = bandwidth_sensitive()[workload];
    let policy = build_policy(policy, config).expect("suite only pairs valid policy/arch");
    let mut sys = System::with_policy(config.clone(), rate_mode(spec, config.cores), policy);
    let recorder = Arc::new(WindowTraceRecorder::new(1 << 16));
    sys.attach_dap_sink(recorder.clone());
    let result = if reference {
        sys.run_reference(INSTR)
    } else {
        sys.run_kernel(INSTR)
    };
    (result, recorder.take().records)
}

#[test]
fn kernel_matches_reference_on_seeded_grid() {
    let mut rng = SplitMix64::from_bytes(b"kernel-equivalence-grid");
    for case in 0..32 {
        let (config, policy, workload) = random_case(&mut rng);
        let reference = run_case(&config, policy, workload, true);
        let kernel = run_case(&config, policy, workload, false);
        assert_eq!(
            reference.0,
            kernel.0,
            "case {case}: RunResult diverged ({policy:?}, cache {:?}, faults {})",
            std::mem::discriminant(&config.cache),
            config.faults.is_some(),
        );
        assert_eq!(
            reference.1, kernel.1,
            "case {case}: window trace diverged ({policy:?})",
        );
    }
}

/// Hand-picked corners the random grid might under-sample: single core,
/// no memory-side cache, and the flat OS-visible tier.
#[test]
fn kernel_matches_reference_on_corner_configs() {
    let corners: Vec<SystemConfig> = vec![
        SystemConfig::no_cache(1),
        SystemConfig::no_cache(4),
        SystemConfig::flat_tier(2, mem_sim::mscache::PlacementGoal::MaximizeFastHits),
        SystemConfig::sectored_dram_cache(8),
    ];
    for (i, config) in corners.into_iter().enumerate() {
        let reference = run_case(&config, PolicyKind::Baseline, i % 3, true);
        let kernel = run_case(&config, PolicyKind::Baseline, i % 3, false);
        assert_eq!(reference.0, kernel.0, "corner {i}: RunResult diverged");
        assert_eq!(reference.1, kernel.1, "corner {i}: window trace diverged");
    }
}

/// The rotation-advance contract (the satellite of the epoch-skipping
/// refactor): when a long main-memory outage stalls every core, the
/// kernel must actually *skip* quanta — and because a skip advances the
/// core-rotation index by exactly the skipped count, the post-stall
/// interleaving (hence every downstream bus reservation) still matches
/// the reference bit for bit.
#[test]
fn epoch_skip_advances_rotation_identically_to_stepping() {
    let mut config = SystemConfig::sectored_dram_cache(4);
    config.faults = Some(
        FaultSchedule::new(7)
            .channel_outage(FaultTarget::MainMemory, 0, 2_000, 150_000)
            .channel_outage(FaultTarget::MainMemory, 1, 2_000, 150_000),
    );
    let reference = run_case(&config, PolicyKind::Dap, 0, true);
    let spec = bandwidth_sensitive()[0];
    let policy = build_policy(PolicyKind::Dap, &config).unwrap();
    let mut sys = System::with_policy(config.clone(), rate_mode(spec, config.cores), policy);
    let recorder = Arc::new(WindowTraceRecorder::new(1 << 16));
    sys.attach_dap_sink(recorder.clone());
    let (result, stats) = sys.run_kernel_instrumented(INSTR);
    assert!(
        stats.skipped_quanta > 0,
        "a full main-memory outage must produce skippable quanta, got {stats:?}"
    );
    assert_eq!(reference.0, result, "skipping changed the simulation");
    assert_eq!(
        reference.1,
        recorder.take().records,
        "skipping changed the window trace"
    );
}
