//! Graceful-shutdown integration tests: a cancelled grid must checkpoint
//! what finished and resume bit-identically, and a deadline-exceeded
//! cell must surface as a structured error without aborting its
//! siblings.

use std::time::Duration;

use experiments::checkpoint::CheckpointManifest;
use experiments::exec::{
    run_variant_grid_recovered_with, CellErrorKind, CellSpec, ExecError, ParallelExecutor,
};
use experiments::runner::{run_workload, AloneIpcCache, PolicyKind, WorkloadRun};
use experiments::CancelToken;
use mem_sim::SystemConfig;
use workloads::{bandwidth_sensitive, rate_mix, Mix};

const INSTR: u64 = 25_000;

fn mixes(n: usize) -> Vec<Mix> {
    bandwidth_sensitive()
        .into_iter()
        .take(n)
        .map(|s| rate_mix(s, 2))
        .collect()
}

fn key_of(run: &WorkloadRun) -> (Vec<mem_sim::CoreResult>, mem_sim::SimStats, u64) {
    (
        run.result.per_core.clone(),
        run.result.stats,
        run.weighted_speedup.to_bits(),
    )
}

/// The shutdown contract end to end: a grid cancelled after cell `k`
/// reports the cancellation structurally, checkpoints exactly the
/// finished cells, and a `DAP_RESUME`-style re-run over the same
/// manifest completes the grid bit-identically to a run that was never
/// interrupted.
#[test]
fn cancelled_grid_resumes_bit_identically() {
    let config = SystemConfig::sectored_dram_cache(2);
    let mixes = mixes(2);
    let variants = [(&config, PolicyKind::Baseline), (&config, PolicyKind::Dap)];
    let total = mixes.len() * variants.len();

    // The reference: the same grid, never interrupted.
    let unbroken = run_variant_grid_recovered_with(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        None,
        0,
        &ParallelExecutor::new(1),
    );
    assert!(unbroken.is_complete(), "{:?}", unbroken.errors);

    // First pass: cancel deterministically after two cells complete.
    // One worker thread makes "which cells finished" deterministic too.
    let manifest = CheckpointManifest::in_memory();
    let token = CancelToken::new();
    token.cancel_after(2);
    let first = run_variant_grid_recovered_with(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        Some(&manifest),
        0,
        &ParallelExecutor::new(1).with_cancel(token.clone()),
    );
    assert!(token.is_cancelled());
    assert!(first.cancelled());
    assert!(!first.is_complete());
    assert_eq!(manifest.len(), 2, "exactly the finished cells checkpoint");
    for error in &first.errors {
        assert_eq!(error.kind, CellErrorKind::Cancelled, "{error}");
    }
    match first.into_result() {
        Err(ExecError::Cancelled {
            completed,
            total: t,
        }) => {
            assert_eq!((completed, t), (2, total));
        }
        other => panic!("expected ExecError::Cancelled, got {other:?}"),
    }

    // Second pass over the same manifest: only the remaining cells run.
    let resumed = run_variant_grid_recovered_with(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        Some(&manifest),
        0,
        &ParallelExecutor::new(1),
    );
    assert!(resumed.is_complete(), "{:?}", resumed.errors);
    assert_eq!(resumed.resumed, 2, "finished cells answer from checkpoint");
    assert_eq!(manifest.len(), total);
    for (m, row) in resumed.runs.iter().enumerate() {
        for (v, cell) in row.iter().enumerate() {
            assert_eq!(
                key_of(cell.as_ref().expect("complete")),
                key_of(unbroken.runs[m][v].as_ref().expect("complete")),
                "resumed cell [{m}][{v}] diverged from the uninterrupted run"
            );
        }
    }
}

/// A cell that blows its per-cell deadline surfaces as a structured
/// `DeadlineExceeded` error while its siblings run to completion — one
/// runaway cell must not take the grid down.
#[test]
fn deadline_exceeded_cell_does_not_abort_siblings() {
    let config = SystemConfig::sectored_dram_cache(2);
    let mixes = mixes(3);
    let alone = AloneIpcCache::new();
    // The runaway cell's budget is large enough to run for minutes; the
    // watchdog must cut it off at the deadline instead. Siblings use a
    // tiny budget so they finish well inside the same deadline.
    let cells = vec![
        CellSpec::new("runaway/Dap", {
            let (config, mix, alone) = (&config, &mixes[0], &alone);
            move || run_workload(config, PolicyKind::Dap, mix, 50_000_000, alone)
        }),
        CellSpec::new("sibling-a/Dap", {
            let (config, mix, alone) = (&config, &mixes[1], &alone);
            move || run_workload(config, PolicyKind::Dap, mix, 2_000, alone)
        }),
        CellSpec::new("sibling-b/Baseline", {
            let (config, mix, alone) = (&config, &mixes[2], &alone);
            move || run_workload(config, PolicyKind::Baseline, mix, 2_000, alone)
        }),
    ];
    let executor = ParallelExecutor::new(2).with_deadline(Duration::from_millis(1_500));
    let results = executor.run_cells(cells, 0);

    assert_eq!(results.len(), 3);
    let error = results[0].as_ref().expect_err("the runaway cell must fail");
    assert_eq!(error.kind, CellErrorKind::DeadlineExceeded);
    assert_eq!(error.label, "runaway/Dap");
    assert!(
        error.message.contains("deadline"),
        "the message names the cause: {error}"
    );
    for (i, result) in results.iter().enumerate().skip(1) {
        assert!(result.is_ok(), "sibling {i} must complete: {result:?}");
    }
}

/// `cancel_after(0)` trips before any work starts: every cell reports
/// `Cancelled` with zero attempts and nothing is checkpointed.
#[test]
fn cancel_before_start_runs_nothing() {
    let config = SystemConfig::sectored_dram_cache(2);
    let mixes = mixes(1);
    let variants = [(&config, PolicyKind::Dap)];
    let manifest = CheckpointManifest::in_memory();
    let token = CancelToken::new();
    token.cancel_after(0);
    let grid = run_variant_grid_recovered_with(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        Some(&manifest),
        0,
        &ParallelExecutor::new(1).with_cancel(token),
    );
    assert!(grid.cancelled());
    assert_eq!(grid.errors.len(), 1);
    assert_eq!(grid.errors[0].kind, CellErrorKind::Cancelled);
    assert_eq!(grid.errors[0].attempts, 0, "the cell never started");
    assert!(manifest.is_empty());
}
