//! Seeded kill-chaos harness for the sharded explorer.
//!
//! The fleet's worker processes are instances of **this test binary**:
//! the env-gated [`shard_worker_entry`] test is re-invoked via
//! `current_exe() shard_worker_entry --exact` with the worker's
//! configuration in environment variables, so the chaos scenarios need
//! no second binary and run under a bare `cargo test`.
//!
//! Scenario one stages every crash fault class at deterministic claim
//! indices — a SIGKILL-class abort holding a fresh lease, an abort in
//! the manifest-record→lease-done window (forcing a duplicate
//! completion), and a mid-run interrupt — and then proves the merged
//! output is **byte-identical** to a single-process reference run.
//! Scenario two poisons one cell and proves the fleet quarantines it
//! after K fleet-wide failures instead of crash-looping.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::Child;
use std::time::Duration;

use experiments::shard::{KILL_ENV, POISON_ENV};
use experiments::{
    explore_grid, merge_worker_manifests, run_worker, supervise, write_merged_manifest,
    CancelToken, CheckpointManifest, ExploreGrid, LeaseLog, SupervisorConfig, WorkerConfig,
    EXIT_INTERRUPTED,
};

/// Gate: when set, [`shard_worker_entry`] is a worker process, not a test.
const ENTRY_ENV: &str = "DAP_SHARD_CHAOS_ENTRY";

const DIR_ENV: &str = "DAP_SHARD_CHAOS_DIR";
const ID_ENV: &str = "DAP_SHARD_CHAOS_ID";
const INC_ENV: &str = "DAP_SHARD_CHAOS_INC";
const CELLS_ENV: &str = "DAP_SHARD_CHAOS_CELLS";
const TTL_ENV: &str = "DAP_SHARD_CHAOS_TTL";

const INSTRUCTIONS: u64 = 3_000;
const QUARANTINE_K: u32 = 2;

fn env_u64(name: &str) -> u64 {
    std::env::var(name).unwrap().parse().unwrap()
}

/// The grid every scenario runs: the first `cells` cells of `smoke`,
/// rebuilt identically by the harness and by every worker process.
fn chaos_grid(cells: usize) -> ExploreGrid {
    let mut grid = explore_grid("smoke", INSTRUCTIONS).unwrap();
    assert!(cells <= grid.cells.len());
    grid.cells.truncate(cells);
    grid
}

/// Worker-process entry point, disguised as a test. Without [`ENTRY_ENV`]
/// it is a no-op (so plain `cargo test` passes); with it, this process
/// drains the grid as one fleet worker and exits through the real worker
/// exit paths — 0 drained, 130 interrupted, SIGABRT for injected kills.
#[test]
fn shard_worker_entry() {
    if std::env::var(ENTRY_ENV).is_err() {
        return;
    }
    let cfg = WorkerConfig {
        out_dir: PathBuf::from(std::env::var(DIR_ENV).unwrap()),
        worker_id: env_u64(ID_ENV) as u32,
        incarnation: env_u64(INC_ENV) as u32,
        grid: chaos_grid(env_u64(CELLS_ENV) as usize),
        ttl_ms: env_u64(TTL_ENV),
        quarantine_k: QUARANTINE_K,
        cancel: CancelToken::new(),
    };
    let summary = run_worker(&cfg).unwrap();
    if summary.interrupted {
        std::process::exit(EXIT_INTERRUPTED);
    }
}

/// Spawns one fleet worker as a child process of this test binary.
fn spawn_worker(
    dir: &std::path::Path,
    worker_id: u32,
    incarnation: u32,
    cells: usize,
    ttl_ms: u64,
    kill_plan: &str,
    poison: Option<&str>,
) -> std::io::Result<Child> {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("shard_worker_entry")
        .arg("--exact")
        .env(ENTRY_ENV, "1")
        .env(DIR_ENV, dir)
        .env(ID_ENV, worker_id.to_string())
        .env(INC_ENV, incarnation.to_string())
        .env(CELLS_ENV, cells.to_string())
        .env(TTL_ENV, ttl_ms.to_string())
        .env(KILL_ENV, kill_plan)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    match poison {
        Some(label) => cmd.env(POISON_ENV, label),
        None => cmd.env_remove(POISON_ENV),
    };
    cmd.spawn()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dap-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_supervisor(workers: u32) -> SupervisorConfig {
    SupervisorConfig {
        workers,
        max_restarts: 2,
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(50),
        seed: 0xC4A05,
    }
}

/// Four workers, three staged faults, and the merged result is still
/// byte-identical to a serial single-process reference run.
#[test]
fn chaos_fleet_merges_bit_identical_to_serial_reference() {
    let cells = 6;
    let ttl_ms = 600;
    let dir = temp_dir("fleet");
    let grid = chaos_grid(cells);

    // The full schedule rides in one env string; each worker applies
    // only its own `worker:incarnation` entries.
    // - w0.1 aborts (SIGKILL-class) right after winning its 1st claim:
    //   the lease must expire and be stolen.
    // - w1.1 aborts after recording its 1st result but before the lease
    //   `done`: the cell is stolen and re-run, forcing a duplicate
    //   completion the merge must reconcile bit-identically.
    // - w2.1 is interrupted (Ctrl-C class) at its 1st claim: exits 130,
    //   is never restarted, and its in-flight lease is released. (The
    //   1st claim because every worker is guaranteed one — the fleet
    //   drains small grids too fast to promise anyone a 2nd.)
    let kill_plan = "0:1:1:after-claim;1:1:1:after-record;2:1:1:interrupt";
    let outcome = supervise(
        &fast_supervisor(4),
        |id, inc| spawn_worker(&dir, id, inc, cells, ttl_ms, kill_plan, None),
        &CancelToken::new(),
    )
    .unwrap();
    assert_eq!(outcome.crashes, 2, "both staged aborts fired");
    assert_eq!(outcome.restarts, 2, "both crashed slots restarted");
    assert_eq!(outcome.abandoned_slots, 0);
    assert!(outcome.interrupted, "the staged interrupt fired");

    let report = merge_worker_manifests(&dir, &grid, QUARANTINE_K, outcome.restarts).unwrap();
    assert!(report.is_complete(), "missing cells: {:?}", report.missing);
    assert_eq!(report.runs.len(), cells);
    assert!(report.quarantined.is_empty());
    assert!(
        report.duplicates >= 1,
        "the record→done abort must force a duplicate completion"
    );
    assert!(report.parse_errors.is_empty());
    let snap = LeaseLog::open(&dir.join("lease.log"), ttl_ms, QUARANTINE_K)
        .unwrap()
        .snapshot()
        .unwrap();
    assert!(
        snap.steals >= 2,
        "both abandoned leases must be stolen, saw {}",
        snap.steals
    );

    // Serial reference: one in-process worker, fresh directory, no
    // faults. The merged fleet output must be byte-identical to it.
    let ref_dir = temp_dir("reference");
    let summary = run_worker(&WorkerConfig {
        out_dir: ref_dir.clone(),
        worker_id: 9,
        incarnation: 1,
        grid: grid.clone(),
        ttl_ms: 60_000,
        quarantine_k: QUARANTINE_K,
        cancel: CancelToken::new(),
    })
    .unwrap();
    assert_eq!(summary.completed, cells);
    let ref_report = merge_worker_manifests(&ref_dir, &grid, QUARANTINE_K, 0).unwrap();

    let merged = dir.join("merged.ckpt");
    let ref_merged = ref_dir.join("merged.ckpt");
    write_merged_manifest(&report, &merged).unwrap();
    write_merged_manifest(&ref_report, &ref_merged).unwrap();
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        std::fs::read(&ref_merged).unwrap(),
        "chaos fleet and serial reference merged manifests differ"
    );

    // The merged manifest holds each cell exactly once (duplicates were
    // reconciled away, not emitted).
    let reloaded = CheckpointManifest::open(&merged).unwrap();
    assert_eq!(reloaded.len(), cells);
    assert_eq!(reloaded.parse_errors(), 0);
    let lines = std::fs::read_to_string(&merged).unwrap();
    assert_eq!(lines.lines().count(), cells);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// A cell that panics in every worker is quarantined after K fleet-wide
/// failures; the rest of the grid completes normally.
#[test]
fn poisoned_cell_is_quarantined_by_the_fleet() {
    let cells = 4;
    let ttl_ms = 600;
    let dir = temp_dir("poison");
    let grid = chaos_grid(cells);
    let poison_label = grid.cells[1].label.clone();
    let poison_key = grid.cells[1].key.clone();

    let outcome = supervise(
        &fast_supervisor(2),
        |id, inc| spawn_worker(&dir, id, inc, cells, ttl_ms, "", Some(&poison_label)),
        &CancelToken::new(),
    )
    .unwrap();
    assert_eq!(outcome.crashes, 0, "panics are caught, not process deaths");
    assert!(!outcome.interrupted);

    let report = merge_worker_manifests(&dir, &grid, QUARANTINE_K, 0).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.runs.len(), cells - 1);
    assert!(!report.runs.contains_key(&poison_key));
    assert_eq!(report.quarantined.len(), 1);
    let (key, fails, error) = &report.quarantined[0];
    assert_eq!(key, &poison_key);
    assert!(*fails >= QUARANTINE_K);
    assert!(
        error.as_deref().unwrap_or("").contains("poisoned cell"),
        "quarantine reports the last failure: {error:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
