//! Crash tolerance and fault-injection integration tests: a panicking
//! cell must not poison its siblings, fault schedules must keep runs
//! bit-identical at any thread count, and a checkpointed grid must
//! resume instead of recomputing.

use experiments::checkpoint::{cell_key, CheckpointManifest};
use experiments::exec::{
    clear_cell_panic, inject_cell_panic, run_variant_grid_recovered, ExperimentPlan,
    ParallelExecutor,
};
use experiments::runner::{run_workload, AloneIpcCache, PolicyKind, WorkloadRun};
use mem_sim::{FaultSchedule, FaultTarget, SystemConfig};
use workloads::{bandwidth_sensitive, rate_mix, Mix};

const INSTR: u64 = 25_000;

fn mixes(n: usize) -> Vec<Mix> {
    bandwidth_sensitive()
        .into_iter()
        .take(n)
        .map(|s| rate_mix(s, 2))
        .collect()
}

/// A schedule exercising every fault kind, with the throttle crossing
/// mid-run so the measured policy re-solves at least once.
fn stress_schedule() -> FaultSchedule {
    FaultSchedule::new(42)
        .throttle(FaultTarget::Cache, 2, 1, 5_000, u64::MAX)
        .channel_outage(FaultTarget::MainMemory, 0, 8_000, 40_000)
        .refresh_storm(FaultTarget::Cache, 2_000, 200, 10_000, 60_000)
        .latency_jitter(FaultTarget::MainMemory, 40, 0, u64::MAX)
}

fn key_of(run: &WorkloadRun) -> (Vec<mem_sim::CoreResult>, mem_sim::SimStats, u64) {
    (
        run.result.per_core.clone(),
        run.result.stats,
        run.weighted_speedup.to_bits(),
    )
}

/// The same fault schedule and seed must produce bit-identical stats at
/// any `DAP_THREADS` — injected faults (including seeded latency jitter)
/// must not introduce cross-thread nondeterminism.
#[test]
fn faulted_grid_is_bit_identical_across_thread_counts() {
    let config = SystemConfig::sectored_dram_cache(2).with_faults(stress_schedule());
    let mixes = mixes(3);
    let run_grid = |threads: usize| {
        let alone = AloneIpcCache::new();
        let mut plan = ExperimentPlan::new();
        {
            let config = &config;
            let alone = &alone;
            for mix in &mixes {
                for kind in [PolicyKind::Baseline, PolicyKind::DapMeasured] {
                    plan.add(move || run_workload(config, kind, mix, INSTR, alone));
                }
            }
        }
        ParallelExecutor::new(threads)
            .run(plan)
            .iter()
            .map(key_of)
            .collect::<Vec<_>>()
    };
    let serial = run_grid(1);
    assert_eq!(serial.len(), 6);
    for threads in [2, 4] {
        assert_eq!(serial, run_grid(threads), "{threads} threads diverged");
    }
}

/// The measured-bandwidth policy actually re-solves under a fault
/// schedule, and its decision stats surface through the run result.
#[test]
fn measured_policy_resolves_under_faults() {
    let config = SystemConfig::sectored_dram_cache(2).with_faults(FaultSchedule::new(1).throttle(
        FaultTarget::Cache,
        2,
        1,
        5_000,
        u64::MAX,
    ));
    let alone = AloneIpcCache::new();
    let mix = &mixes(1)[0];
    let run = run_workload(&config, PolicyKind::DapMeasured, mix, INSTR, &alone);
    let d = run.result.dap_decisions.expect("DAP ran");
    assert!(
        d.bandwidth_resolves >= 1,
        "crossing the throttle boundary must re-derive the budget \
         (saw {} resolves)",
        d.bandwidth_resolves
    );
    // Static DAP on the same faulted system never re-solves.
    let static_run = run_workload(&config, PolicyKind::Dap, mix, INSTR, &alone);
    assert_eq!(
        static_run
            .result
            .dap_decisions
            .expect("DAP ran")
            .bandwidth_resolves,
        0
    );
}

/// The CI smoke scenario: a tiny grid with one injected panic cell and a
/// channel-outage schedule completes with exactly one `CellError`, and
/// every sibling cell is bit-identical to the panic-free run.
#[test]
fn injected_panic_isolates_to_one_cell() {
    let healthy = SystemConfig::sectored_dram_cache(2);
    let outaged = SystemConfig::sectored_dram_cache(2)
        .with_faults(FaultSchedule::new(3).channel_outage(FaultTarget::Cache, 0, 4_000, u64::MAX));
    let mixes = mixes(2);
    let variants = [
        (&healthy, PolicyKind::Dap),
        (&outaged, PolicyKind::DapMeasured),
    ];

    let clean =
        run_variant_grid_recovered(&variants, &mixes, INSTR, &AloneIpcCache::new(), None, 0);
    assert!(clean.is_complete(), "{:?}", clean.errors);

    let victim = format!("{}/{:?}", mixes[1].name, PolicyKind::Dap);
    inject_cell_panic(&victim);
    let faulted =
        run_variant_grid_recovered(&variants, &mixes, INSTR, &AloneIpcCache::new(), None, 0);
    clear_cell_panic();

    assert_eq!(faulted.errors.len(), 1, "exactly one cell may fail");
    let error = &faulted.errors[0];
    assert_eq!(error.label, victim);
    assert!(error.message.contains("injected panic"), "{error}");
    assert!(error.fingerprint.is_some(), "errors carry the cell key");

    let mut compared = 0;
    for (m, row) in faulted.runs.iter().enumerate() {
        for (v, cell) in row.iter().enumerate() {
            let clean_cell = clean.runs[m][v].as_ref().expect("clean grid complete");
            match cell {
                None => assert_eq!(
                    format!("{}/{:?}", mixes[m].name, variants[v].1),
                    victim,
                    "only the injected cell may be missing"
                ),
                Some(run) => {
                    assert_eq!(key_of(run), key_of(clean_cell), "sibling cell diverged");
                    compared += 1;
                }
            }
        }
    }
    assert_eq!(compared, mixes.len() * variants.len() - 1);
}

/// A retried transient panic recovers without an error and without
/// disturbing the grid's results.
#[test]
fn transient_panic_recovers_on_retry() {
    let config = SystemConfig::sectored_dram_cache(2);
    let mixes = mixes(1);
    let variants = [(&config, PolicyKind::Dap)];
    let clean =
        run_variant_grid_recovered(&variants, &mixes, INSTR, &AloneIpcCache::new(), None, 0);

    inject_cell_panic(&format!("{}/{:?}", mixes[0].name, PolicyKind::Dap));
    let retried =
        run_variant_grid_recovered(&variants, &mixes, INSTR, &AloneIpcCache::new(), None, 1);
    clear_cell_panic();
    assert!(retried.is_complete(), "{:?}", retried.errors);
    assert_eq!(
        key_of(retried.runs[0][0].as_ref().unwrap()),
        key_of(clean.runs[0][0].as_ref().unwrap()),
    );
}

/// An interrupted grid resumes from its checkpoint manifest: the second
/// invocation simulates only the previously-failed cell and answers the
/// rest from the manifest, bit-identically.
#[test]
fn checkpointed_grid_resumes_after_a_crash() {
    let config = SystemConfig::sectored_dram_cache(2).with_faults(FaultSchedule::new(9).throttle(
        FaultTarget::Cache,
        2,
        1,
        5_000,
        u64::MAX,
    ));
    let mixes = mixes(2);
    let variants = [
        (&config, PolicyKind::Baseline),
        (&config, PolicyKind::DapMeasured),
    ];
    let manifest = CheckpointManifest::in_memory();

    let victim = format!("{}/{:?}", mixes[0].name, PolicyKind::Baseline);
    inject_cell_panic(&victim);
    let first = run_variant_grid_recovered(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        Some(&manifest),
        0,
    );
    clear_cell_panic();
    assert_eq!(first.errors.len(), 1);
    assert_eq!(manifest.len(), 3, "finished cells were checkpointed");

    let second = run_variant_grid_recovered(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        Some(&manifest),
        0,
    );
    assert!(second.is_complete());
    assert_eq!(second.resumed, 3, "only the failed cell re-ran");
    assert_eq!(manifest.len(), 4);

    // A third pass is answered entirely from the manifest.
    let third = run_variant_grid_recovered(
        &variants,
        &mixes,
        INSTR,
        &AloneIpcCache::new(),
        Some(&manifest),
        0,
    );
    assert_eq!(third.resumed, 4);
    for (a, b) in second
        .runs
        .iter()
        .flatten()
        .zip(third.runs.iter().flatten())
    {
        assert_eq!(
            key_of(a.as_ref().unwrap()),
            key_of(b.as_ref().unwrap()),
            "resumed results must be bit-identical"
        );
    }

    // The manifest keys separate these cells from any other grid.
    let other = cell_key(&config, PolicyKind::Dap, &mixes[0], INSTR);
    assert!(manifest.lookup(&other).is_none());
}
