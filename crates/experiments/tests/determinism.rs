//! Serial-vs-parallel determinism: the same experiment plan must produce
//! bit-identical results on one thread and on many.
//!
//! This is the executor's core contract — `run_experiments.sh` may run
//! the figure grid at any `DAP_THREADS` and the published numbers must
//! not change.

use dap_core::DecisionStats;
use experiments::exec::{ExperimentPlan, ParallelExecutor};
use experiments::runner::{run_workload, AloneIpcCache, PolicyKind};
use mem_sim::{CoreResult, SimStats, SystemConfig};
use workloads::{bandwidth_sensitive, rate_mix};

const INSTR: u64 = 25_000;

/// Everything a run produces, with the weighted speedup bit-cast so the
/// comparison is exact, not within-epsilon.
type Outcome = (Vec<CoreResult>, SimStats, Option<DecisionStats>, u64);

fn run_grid(threads: usize) -> Vec<Outcome> {
    let config = SystemConfig::sectored_dram_cache(2);
    let alone = AloneIpcCache::new();
    let mixes: Vec<_> = bandwidth_sensitive()
        .into_iter()
        .take(3)
        .map(|s| rate_mix(s, 2))
        .collect();
    let mut plan = ExperimentPlan::new();
    {
        let config = &config;
        let alone = &alone;
        for mix in &mixes {
            for kind in [PolicyKind::Baseline, PolicyKind::Dap] {
                plan.add(move || run_workload(config, kind, mix, INSTR, alone));
            }
        }
    }
    ParallelExecutor::new(threads)
        .run(plan)
        .into_iter()
        .map(|r| {
            (
                r.result.per_core,
                r.result.stats,
                r.result.dap_decisions,
                r.weighted_speedup.to_bits(),
            )
        })
        .collect()
}

#[test]
fn parallel_results_bit_identical_to_serial() {
    let serial = run_grid(1);
    assert_eq!(serial.len(), 6);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run_grid(threads), "{threads} threads diverged");
    }
}

/// One traced grid outcome: run numbers, window traces, and the final
/// per-variant metrics snapshots.
type TracedOutcome = (
    Vec<Vec<Outcome>>,
    Vec<Vec<(String, Vec<dap_core::WindowSnapshot>)>>,
    Vec<dap_telemetry::MetricsSnapshot>,
);

fn run_traced_grid(threads: usize) -> TracedOutcome {
    experiments::exec::set_thread_override(threads);
    let config = SystemConfig::sectored_dram_cache(2);
    let alone = AloneIpcCache::new();
    let mixes: Vec<_> = bandwidth_sensitive()
        .into_iter()
        .take(3)
        .map(|s| rate_mix(s, 2))
        .collect();
    let variants: Vec<(&SystemConfig, PolicyKind, &str)> = vec![
        (&config, PolicyKind::Baseline, "base"),
        (&config, PolicyKind::Dap, "dap"),
    ];
    let (per_mix, telemetry) =
        experiments::telemetry::run_variant_grid_traced(&variants, &mixes, INSTR, &alone);
    experiments::exec::set_thread_override(0);
    (
        per_mix
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|r| {
                        (
                            r.result.per_core,
                            r.result.stats,
                            r.result.dap_decisions,
                            r.weighted_speedup.to_bits(),
                        )
                    })
                    .collect()
            })
            .collect(),
        telemetry
            .iter()
            .map(|v| {
                v.traces
                    .iter()
                    .map(|(mix, t)| (mix.clone(), t.records.clone()))
                    .collect()
            })
            .collect(),
        telemetry.into_iter().map(|v| v.metrics).collect(),
    )
}

/// Telemetry must not break the executor's contract: with recorders and a
/// shared metrics registry attached, runs, window traces, and metric
/// totals all stay bit-identical at any thread count. (Metric totals are
/// sums of commutative atomic adds, so even the *shared* per-variant
/// registries converge to the same snapshot.)
#[test]
fn traced_runs_stay_deterministic() {
    let serial = run_traced_grid(1);
    assert_eq!(serial.0.len(), 3, "three mixes");
    assert_eq!(serial.1.len(), 2, "two variants");
    if dap_telemetry::enabled() {
        assert!(
            serial.1[1].iter().all(|(_, records)| !records.is_empty()),
            "DAP variant traces every mix"
        );
    }
    for threads in [2, 8] {
        let parallel = run_traced_grid(threads);
        assert_eq!(serial.0, parallel.0, "{threads} threads: runs diverged");
        assert_eq!(serial.1, parallel.1, "{threads} threads: traces diverged");
        assert_eq!(serial.2, parallel.2, "{threads} threads: metrics diverged");
    }
}
