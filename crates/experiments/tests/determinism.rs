//! Serial-vs-parallel determinism: the same experiment plan must produce
//! bit-identical results on one thread and on many.
//!
//! This is the executor's core contract — `run_experiments.sh` may run
//! the figure grid at any `DAP_THREADS` and the published numbers must
//! not change.

use dap_core::DecisionStats;
use experiments::exec::{ExperimentPlan, ParallelExecutor};
use experiments::runner::{run_workload, AloneIpcCache, PolicyKind};
use mem_sim::{CoreResult, SimStats, SystemConfig};
use workloads::{bandwidth_sensitive, rate_mix};

const INSTR: u64 = 25_000;

/// Everything a run produces, with the weighted speedup bit-cast so the
/// comparison is exact, not within-epsilon.
type Outcome = (Vec<CoreResult>, SimStats, Option<DecisionStats>, u64);

fn run_grid(threads: usize) -> Vec<Outcome> {
    let config = SystemConfig::sectored_dram_cache(2);
    let alone = AloneIpcCache::new();
    let mixes: Vec<_> = bandwidth_sensitive()
        .into_iter()
        .take(3)
        .map(|s| rate_mix(s, 2))
        .collect();
    let mut plan = ExperimentPlan::new();
    {
        let config = &config;
        let alone = &alone;
        for mix in &mixes {
            for kind in [PolicyKind::Baseline, PolicyKind::Dap] {
                plan.add(move || run_workload(config, kind, mix, INSTR, alone));
            }
        }
    }
    ParallelExecutor::new(threads)
        .run(plan)
        .into_iter()
        .map(|r| {
            (
                r.result.per_core,
                r.result.stats,
                r.result.dap_decisions,
                r.weighted_speedup.to_bits(),
            )
        })
        .collect()
}

#[test]
fn parallel_results_bit_identical_to_serial() {
    let serial = run_grid(1);
    assert_eq!(serial.len(), 6);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run_grid(threads), "{threads} threads diverged");
    }
}
