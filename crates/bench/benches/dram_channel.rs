//! Microbenchmarks for the DRAM timing model: per-access cost of the
//! resource-reservation scheduler under streaming and random patterns.

use dap_bench::timing::{black_box, Harness};
use mem_sim::dram::{DramConfig, DramModule};

fn bench_dram(h: &mut Harness) {
    let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
    let mut block = 0u64;
    let mut now = 0;
    h.bench("hbm_streaming_read", || {
        block += 1;
        now += 3;
        black_box(m.read_block(block, now))
    });

    let mut m = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
    let mut x = 0x243F6A8885A308D3u64;
    let mut now = 0;
    h.bench("ddr4_random_read", || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        now += 9;
        black_box(m.read_block(x % (1 << 24), now))
    });

    let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
    let mut block = 0u64;
    let mut now = 0;
    h.bench("write_batched", || {
        block += 1;
        now += 3;
        m.write_block(black_box(block), now);
    });
}

fn main() {
    let mut h = Harness::new("dram");
    bench_dram(&mut h);
    h.finish();
}
