//! Microbenchmarks for the DRAM timing model: per-access cost of the
//! resource-reservation scheduler under streaming and random patterns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mem_sim::dram::{DramConfig, DramModule};

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/hbm_streaming_read", |b| {
        let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let mut block = 0u64;
        let mut now = 0;
        b.iter(|| {
            block += 1;
            now += 3;
            black_box(m.read_block(block, now))
        });
    });
    c.bench_function("dram/ddr4_random_read", |b| {
        let mut m = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
        let mut x = 0x243F6A8885A308D3u64;
        let mut now = 0;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += 9;
            black_box(m.read_block(x % (1 << 24), now))
        });
    });
    c.bench_function("dram/write_batched", |b| {
        let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let mut block = 0u64;
        let mut now = 0;
        b.iter(|| {
            block += 1;
            now += 3;
            m.write_block(black_box(block), now);
        });
    });
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
