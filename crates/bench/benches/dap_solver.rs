//! Microbenchmarks for the DAP window solvers — the arithmetic that the
//! paper argues fits in trivial hardware must also be nanoseconds in
//! software.

use dap_bench::timing::{black_box, Harness};
use dap_core::{
    AlloyDapSolver, DapConfig, DapController, EdramDapSolver, SectoredDapSolver, Technique,
    WindowBudget, WindowStats,
};

fn pressured() -> WindowStats {
    WindowStats {
        cache_accesses: 48,
        cache_read_accesses: 30,
        cache_write_accesses: 18,
        mm_accesses: 3,
        read_misses: 9,
        writes: 11,
        clean_read_hits: 17,
    }
}

fn bench_solvers(h: &mut Harness) {
    let sectored =
        SectoredDapSolver::new(WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75));
    let alloy = AlloyDapSolver::new(WindowBudget::from_gbps(
        102.4 * 2.0 / 3.0,
        None,
        38.4,
        4.0,
        64,
        0.75,
    ));
    let edram = EdramDapSolver::new(WindowBudget::from_gbps(
        51.2,
        Some(51.2),
        38.4,
        4.0,
        64,
        0.75,
    ));
    let stats = pressured();

    h.bench("sectored", || sectored.solve(black_box(&stats)));
    h.bench("alloy", || alloy.solve(black_box(&stats)));
    h.bench("edram", || edram.solve(black_box(&stats)));
}

fn bench_controller(h: &mut Harness) {
    let mut dap = DapController::new(DapConfig::hbm_ddr4());
    let stats = pressured();
    h.bench("window_cycle", || {
        dap.end_window_with(black_box(&stats));
        while dap.try_apply(Technique::FillWriteBypass) {}
        while dap.try_apply(Technique::WriteBypass) {}
    });

    let mut empty = DapController::new(DapConfig::hbm_ddr4());
    h.bench("try_apply_empty", || {
        empty.try_apply(black_box(Technique::InformedForcedReadMiss))
    });
}

fn main() {
    let mut h = Harness::new("solver");
    bench_solvers(&mut h);
    bench_controller(&mut h);
    h.finish();
}
