//! Microbenchmarks for the DAP window solvers — the arithmetic that the
//! paper argues fits in trivial hardware must also be nanoseconds in
//! software.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dap_core::{
    AlloyDapSolver, DapConfig, DapController, EdramDapSolver, SectoredDapSolver, Technique,
    WindowBudget, WindowStats,
};

fn pressured() -> WindowStats {
    WindowStats {
        cache_accesses: 48,
        cache_read_accesses: 30,
        cache_write_accesses: 18,
        mm_accesses: 3,
        read_misses: 9,
        writes: 11,
        clean_read_hits: 17,
    }
}

fn bench_solvers(c: &mut Criterion) {
    let sectored =
        SectoredDapSolver::new(WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75));
    let alloy = AlloyDapSolver::new(WindowBudget::from_gbps(
        102.4 * 2.0 / 3.0,
        None,
        38.4,
        4.0,
        64,
        0.75,
    ));
    let edram = EdramDapSolver::new(WindowBudget::from_gbps(
        51.2,
        Some(51.2),
        38.4,
        4.0,
        64,
        0.75,
    ));
    let stats = pressured();

    c.bench_function("solver/sectored", |b| {
        b.iter(|| sectored.solve(black_box(&stats)))
    });
    c.bench_function("solver/alloy", |b| {
        b.iter(|| alloy.solve(black_box(&stats)))
    });
    c.bench_function("solver/edram", |b| {
        b.iter(|| edram.solve(black_box(&stats)))
    });
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("controller/window_cycle", |b| {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        let stats = pressured();
        b.iter(|| {
            dap.end_window_with(black_box(&stats));
            while dap.try_apply(Technique::FillWriteBypass) {}
            while dap.try_apply(Technique::WriteBypass) {}
        });
    });
    c.bench_function("controller/try_apply_empty", |b| {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        b.iter(|| dap.try_apply(black_box(Technique::InformedForcedReadMiss)));
    });
}

criterion_group!(benches, bench_solvers, bench_controller);
criterion_main!(benches);
