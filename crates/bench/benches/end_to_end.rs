//! End-to-end simulator throughput: simulated instructions per wall-clock
//! second for each memory-side cache architecture, with and without DAP.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dap_core::DapConfig;
use mem_sim::{DapPolicy, System, SystemConfig};
use workloads::{rate_mode, spec};

const INSTR: u64 = 40_000;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("sectored_baseline_8core", |b| {
        b.iter_batched(
            || {
                System::new(
                    SystemConfig::sectored_dram_cache(8),
                    rate_mode(spec("libquantum").unwrap(), 8),
                )
            },
            |mut sys| sys.run(INSTR),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("sectored_dap_8core", |b| {
        b.iter_batched(
            || {
                System::with_policy(
                    SystemConfig::sectored_dram_cache(8),
                    rate_mode(spec("libquantum").unwrap(), 8),
                    Box::new(DapPolicy::new(DapConfig::hbm_ddr4())),
                )
            },
            |mut sys| sys.run(INSTR),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("alloy_baseline_8core", |b| {
        b.iter_batched(
            || {
                System::new(
                    SystemConfig::alloy_cache(8),
                    rate_mode(spec("hpcg").unwrap(), 8),
                )
            },
            |mut sys| sys.run(INSTR),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("edram_dap_8core", |b| {
        b.iter_batched(
            || {
                System::with_policy(
                    SystemConfig::edram_cache(8, 256),
                    rate_mode(spec("gcc.expr").unwrap(), 8),
                    Box::new(DapPolicy::new(DapConfig::edram_ddr4())),
                )
            },
            |mut sys| sys.run(INSTR),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
