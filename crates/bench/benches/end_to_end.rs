//! End-to-end simulator throughput: simulated instructions per wall-clock
//! second for each memory-side cache architecture, with and without DAP.

use dap_bench::timing::Harness;
use dap_core::DapConfig;
use mem_sim::{DapPolicy, System, SystemConfig};
use workloads::{rate_mode, spec};

const INSTR: u64 = 40_000;

fn bench_end_to_end(h: &mut Harness) {
    h.bench_with_setup(
        "sectored_baseline_8core",
        || {
            System::new(
                SystemConfig::sectored_dram_cache(8),
                rate_mode(spec("libquantum").unwrap(), 8),
            )
        },
        |mut sys| sys.run(INSTR),
    );
    h.bench_with_setup(
        "sectored_dap_8core",
        || {
            System::with_policy(
                SystemConfig::sectored_dram_cache(8),
                rate_mode(spec("libquantum").unwrap(), 8),
                Box::new(DapPolicy::new(DapConfig::hbm_ddr4())),
            )
        },
        |mut sys| sys.run(INSTR),
    );
    h.bench_with_setup(
        "alloy_baseline_8core",
        || {
            System::new(
                SystemConfig::alloy_cache(8),
                rate_mode(spec("hpcg").unwrap(), 8),
            )
        },
        |mut sys| sys.run(INSTR),
    );
    h.bench_with_setup(
        "edram_dap_8core",
        || {
            System::with_policy(
                SystemConfig::edram_cache(8, 256),
                rate_mode(spec("gcc.expr").unwrap(), 8),
                Box::new(DapPolicy::new(DapConfig::edram_ddr4())),
            )
        },
        |mut sys| sys.run(INSTR),
    );
}

fn main() {
    let mut h = Harness::new("system");
    bench_end_to_end(&mut h);
    h.finish();
}
