//! Microbenchmarks for the cache directory structures on the simulator's
//! hot path: set-associative lookups, tag-cache probes, DBC probes, and
//! the stride prefetcher.

use dap_bench::timing::{black_box, Harness};
use mem_sim::cache::{ReplacementKind, SetAssocCache};
use mem_sim::mscache::{DirtyBitCache, TagCache};
use mem_sim::prefetch::StridePrefetcher;

fn bench_set_assoc(h: &mut Harness) {
    let mut l3: SetAssocCache<()> = SetAssocCache::new(2048, 16, ReplacementKind::Lru);
    for k in 0..32_768u64 {
        l3.insert(k, (), false);
    }
    let mut k = 0u64;
    h.bench("l3_lookup_hit", || {
        k = (k + 1) % 32_768;
        black_box(l3.lookup(k))
    });

    let mut dir: SetAssocCache<u64> = SetAssocCache::new(4096, 4, ReplacementKind::Nru);
    let mut k = 0u64;
    h.bench("sectored_insert_evict", || {
        k += 1;
        black_box(dir.insert(k, 0, k.is_multiple_of(3)))
    });
}

fn bench_helpers(h: &mut Harness) {
    let mut tc = TagCache::new(1024, 4, 5);
    let mut sector = 0u64;
    h.bench("tag_cache_probe", || {
        sector = (sector + 1) % 4096;
        black_box(tc.probe(sector))
    });

    let mut dbc = DirtyBitCache::new(512, 4, 5);
    for s in 0..20_000u64 {
        if s % 7 == 0 {
            dbc.mark_dirty(s);
        }
    }
    let mut s = 0u64;
    h.bench("dbc_probe", || {
        s = (s + 1) % 20_000;
        black_box(dbc.probe(s))
    });

    let mut p = StridePrefetcher::new(2);
    let mut block = 0u64;
    h.bench("stride_observe", || {
        block += 1;
        black_box(p.observe(block))
    });
}

fn main() {
    let mut h = Harness::new("cache");
    bench_set_assoc(&mut h);
    bench_helpers(&mut h);
    h.finish();
}
