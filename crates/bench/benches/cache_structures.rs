//! Microbenchmarks for the cache directory structures on the simulator's
//! hot path: set-associative lookups, tag-cache probes, DBC probes, and
//! the stride prefetcher.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mem_sim::cache::{ReplacementKind, SetAssocCache};
use mem_sim::mscache::{DirtyBitCache, TagCache};
use mem_sim::prefetch::StridePrefetcher;

fn bench_set_assoc(c: &mut Criterion) {
    c.bench_function("cache/l3_lookup_hit", |b| {
        let mut l3: SetAssocCache<()> = SetAssocCache::new(2048, 16, ReplacementKind::Lru);
        for k in 0..32_768u64 {
            l3.insert(k, (), false);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 32_768;
            black_box(l3.lookup(k))
        });
    });
    c.bench_function("cache/sectored_insert_evict", |b| {
        let mut dir: SetAssocCache<u64> = SetAssocCache::new(4096, 4, ReplacementKind::Nru);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(dir.insert(k, 0, k % 3 == 0))
        });
    });
}

fn bench_helpers(c: &mut Criterion) {
    c.bench_function("cache/tag_cache_probe", |b| {
        let mut tc = TagCache::new(1024, 4, 5);
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 1) % 4096;
            black_box(tc.probe(sector))
        });
    });
    c.bench_function("cache/dbc_probe", |b| {
        let mut dbc = DirtyBitCache::new(512, 4, 5);
        for s in 0..20_000u64 {
            if s % 7 == 0 {
                dbc.mark_dirty(s);
            }
        }
        let mut s = 0u64;
        b.iter(|| {
            s = (s + 1) % 20_000;
            black_box(dbc.probe(s))
        });
    });
    c.bench_function("prefetch/stride_observe", |b| {
        let mut p = StridePrefetcher::new(2);
        let mut block = 0u64;
        b.iter(|| {
            block += 1;
            black_box(p.observe(block))
        });
    });
}

criterion_group!(benches, bench_set_assoc, bench_helpers);
criterion_main!(benches);
