//! Measures the simulation-speed cost of full telemetry (window-trace
//! sink + subsystem metrics) against an identical untraced run.
//!
//! The acceptance target is ≤5% overhead. Run with:
//!
//! ```text
//! cargo run --release -p dap-bench --example telemetry_overhead
//! ```
//!
//! Methodology: CPU time (utime+stime from `/proc/self/stat`) instead
//! of wall clock, ABBA-interleaved samples so monotone within-process
//! drift biases neither variant, and a min-over-samples estimator —
//! interference on a shared machine only ever adds time, so the
//! minimum is the best estimate of each variant's true cost.

use std::sync::Arc;

use experiments::runner::{build_policy, PolicyKind};
use mem_sim::{SubsystemTelemetry, System, SystemConfig};
use workloads::{rate_mix, spec};

/// Process CPU time (user+system) in clock ticks, from /proc/self/stat.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("procfs");
    // Fields 14 (utime) and 15 (stime), 1-indexed after the comm field,
    // which may contain spaces — skip past the closing paren first.
    let rest = &stat[stat.rfind(')').unwrap() + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().unwrap();
    let stime: u64 = fields[12].parse().unwrap();
    utime + stime
}

/// Runs one mcf rate-8 DAP simulation, optionally with the full
/// telemetry stack attached, and returns its CPU cost in ticks.
fn run(traced: bool, instr: u64) -> u64 {
    let config = SystemConfig::sectored_dram_cache(8);
    let mix = rate_mix(spec("mcf").unwrap(), 8);
    let policy = build_policy(PolicyKind::Dap, &config).unwrap();
    let mut sys = System::with_policy(config, mix.traces(), policy);
    let registry = dap_telemetry::MetricsRegistry::new();
    if traced {
        sys.attach_dap_sink(Arc::new(dap_telemetry::WindowTraceRecorder::new(1 << 12)));
        sys.attach_telemetry(SubsystemTelemetry::new(&registry));
    }
    let t = cpu_ticks();
    let r = sys.run(instr);
    std::hint::black_box(r);
    cpu_ticks() - t
}

fn main() {
    let instr = 1_600_000;
    run(false, 50_000); // warm up
    let mut plain = Vec::new();
    let mut traced = Vec::new();
    for i in 0..6 {
        if i % 2 == 0 {
            plain.push(run(false, instr));
            traced.push(run(true, instr));
        } else {
            traced.push(run(true, instr));
            plain.push(run(false, instr));
        }
    }
    let best_plain = *plain.iter().min().unwrap();
    let best_traced = *traced.iter().min().unwrap();
    println!("plain   {plain:?} ticks, min {best_plain}");
    println!("traced  {traced:?} ticks, min {best_traced}");
    let overhead = best_traced as f64 / best_plain as f64 - 1.0;
    println!("overhead (min/min) {:+.2}%", overhead * 100.0);
}
