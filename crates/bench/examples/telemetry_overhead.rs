//! Measures the simulation-speed cost of the observability stack:
//! full telemetry (window-trace sink + subsystem metrics) and the
//! cycle-attribution profiler at its default 1-in-64 sampling, each
//! against an identical instrumented-one-level-less run.
//!
//! The acceptance target is ≤5% overhead for the profiler's marginal
//! cost. Run with:
//!
//! ```text
//! cargo run --release -p dap-bench --example telemetry_overhead
//! ```
//!
//! Methodology: CPU time (utime+stime from `/proc/self/stat`) instead
//! of wall clock; the three variants run back to back within each round
//! in rotating order (so monotone within-process drift biases no
//! variant); each round yields *paired* ratios — telemetry/plain and
//! profiled/telemetry — and the reported overhead is the median ratio
//! over rounds, which cancels the between-round machine drift that
//! dominates shared boxes.
//!
//! Set `DAP_ASSERT_OVERHEAD=1` to make the run fail (exit 1) when the
//! profiler's median overhead exceeds the 5% target — wall-clock noise
//! on shared machines makes this assertion advisory, so it is opt-in.

use std::sync::Arc;

use experiments::runner::{build_policy, PolicyKind};
use mem_sim::{SubsystemTelemetry, System, SystemConfig};
use workloads::{rate_mix, spec};

/// Process CPU time (user+system) in clock ticks, from /proc/self/stat.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("procfs");
    // Fields 14 (utime) and 15 (stime), 1-indexed after the comm field,
    // which may contain spaces — skip past the closing paren first.
    let rest = &stat[stat.rfind(')').unwrap() + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().unwrap();
    let stime: u64 = fields[12].parse().unwrap();
    utime + stime
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// No instrumentation at all.
    Plain,
    /// Window-trace sink + subsystem metrics, profiler disabled.
    Telemetry,
    /// Telemetry plus the profiler at the default 1-in-64 interval.
    Profiled,
}

/// Runs one mcf rate-8 DAP simulation in the given instrumentation mode
/// and returns its CPU cost in ticks.
fn run(mode: Mode, instr: u64) -> u64 {
    let config = SystemConfig::sectored_dram_cache(8);
    let mix = rate_mix(spec("mcf").unwrap(), 8);
    let policy = build_policy(PolicyKind::Dap, &config).unwrap();
    let mut sys = System::with_policy(config, mix.traces(), policy);
    let registry = dap_telemetry::MetricsRegistry::new();
    if mode != Mode::Plain {
        sys.attach_dap_sink(Arc::new(dap_telemetry::WindowTraceRecorder::new(1 << 12)));
        sys.attach_telemetry(SubsystemTelemetry::new(&registry));
        // attach_telemetry arms the profiler from DAP_PROFILE_SAMPLE;
        // pin the interval explicitly so the variants don't depend on
        // the caller's environment.
        if mode == Mode::Profiled {
            if let Some(profiler) = mem_sim::AccessProfiler::new(64, 64) {
                sys.attach_profiler(profiler);
            }
        } else {
            sys.detach_profiler();
        }
    }
    let t = cpu_ticks();
    let r = sys.run(instr);
    std::hint::black_box(r);
    cpu_ticks() - t
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

fn main() {
    let instr = 1_600_000;
    run(Mode::Plain, 50_000); // warm up
    const ROUNDS: usize = 7;
    let mut plain = Vec::new();
    let mut telemetry = Vec::new();
    let mut profiled = Vec::new();
    for i in 0..ROUNDS {
        // Rotate execution order each round so any monotone drift
        // (thermal, cgroup throttling) biases no variant.
        let order = match i % 3 {
            0 => [Mode::Plain, Mode::Telemetry, Mode::Profiled],
            1 => [Mode::Telemetry, Mode::Profiled, Mode::Plain],
            _ => [Mode::Profiled, Mode::Plain, Mode::Telemetry],
        };
        let mut round = [0u64; 3];
        for mode in order {
            let ticks = run(mode, instr);
            match mode {
                Mode::Plain => round[0] = ticks,
                Mode::Telemetry => round[1] = ticks,
                Mode::Profiled => round[2] = ticks,
            }
        }
        plain.push(round[0]);
        telemetry.push(round[1]);
        profiled.push(round[2]);
    }
    println!("plain     {plain:?} ticks");
    println!("telemetry {telemetry:?} ticks");
    println!("profiled  {profiled:?} ticks");
    // Paired within-round ratios cancel between-round machine drift.
    let telemetry_overhead = median(
        plain
            .iter()
            .zip(&telemetry)
            .map(|(&p, &t)| t as f64 / p.max(1) as f64 - 1.0)
            .collect(),
    );
    let profiler_overhead = median(
        telemetry
            .iter()
            .zip(&profiled)
            .map(|(&t, &f)| f as f64 / t.max(1) as f64 - 1.0)
            .collect(),
    );
    let stack_overhead = median(
        plain
            .iter()
            .zip(&profiled)
            .map(|(&p, &f)| f as f64 / p.max(1) as f64 - 1.0)
            .collect(),
    );
    println!(
        "telemetry overhead (median paired)  {:+.2}%",
        telemetry_overhead * 100.0
    );
    println!(
        "profiler overhead (median paired)   {:+.2}%",
        profiler_overhead * 100.0
    );
    println!(
        "full stack overhead (median paired) {:+.2}%",
        stack_overhead * 100.0
    );
    let assert_overhead = std::env::var("DAP_ASSERT_OVERHEAD").is_ok_and(|v| v.trim() == "1");
    if assert_overhead && profiler_overhead > 0.05 {
        eprintln!(
            "telemetry_overhead: profiler overhead {:.2}% exceeds the 5% acceptance target",
            profiler_overhead * 100.0
        );
        std::process::exit(1);
    }
}
