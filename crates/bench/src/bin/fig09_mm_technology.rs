//! Regenerates the paper's Fig. 9 (main-memory technology sweep).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(250_000);
        println!(
            "{}",
            experiments::figures::fig09_mm_technology(instructions)
        );
    });
}
