//! Ablation study: see `experiments::ablations::ablation_prefetch_degree`.
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!(
        "{}",
        experiments::ablations::ablation_prefetch_degree(instructions)
    );
}
