//! Regenerates the paper's Fig. 15 (eDRAM cache with DAP).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(300_000);
        println!("{}", experiments::figures::fig15_edram(instructions));
        dap_bench::artifacts::maybe_emit_window_traces(
            "fig15_edram",
            &mem_sim::SystemConfig::edram_cache(8, 256),
            instructions,
        );
    });
}
