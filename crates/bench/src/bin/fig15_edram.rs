//! Regenerates the paper's Fig. 15 (eDRAM cache with DAP).
fn main() {
    let instructions = dap_bench::instructions(300_000);
    println!("{}", experiments::figures::fig15_edram(instructions));
}
