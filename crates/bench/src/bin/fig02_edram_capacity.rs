//! Regenerates the paper's Fig. 2 (eDRAM capacity doubling).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!(
            "{}",
            experiments::figures::fig02_edram_capacity(instructions)
        );
    });
}
