//! Regenerates the paper's Fig. 2 (eDRAM capacity doubling).
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!(
        "{}",
        experiments::figures::fig02_edram_capacity(instructions)
    );
}
