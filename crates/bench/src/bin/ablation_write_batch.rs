//! Ablation study: see `experiments::ablations::ablation_write_batch`.
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!(
        "{}",
        experiments::ablations::ablation_write_batch(instructions)
    );
}
