//! Regenerates the paper's Fig. 10 (capacity and bandwidth sweep).
fn main() {
    let instructions = dap_bench::instructions(250_000);
    println!(
        "{}",
        experiments::figures::fig10_capacity_bandwidth(instructions)
    );
}
