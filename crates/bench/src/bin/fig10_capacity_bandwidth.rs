//! Regenerates the paper's Fig. 10 (capacity and bandwidth sweep).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(250_000);
        println!(
            "{}",
            experiments::figures::fig10_capacity_bandwidth(instructions)
        );
    });
}
