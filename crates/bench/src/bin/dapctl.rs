//! `dapctl` — command-line driver for ad-hoc simulations.
//!
//! ```text
//! dapctl list
//!     List the benchmark clones and their parameters.
//! dapctl run <benchmark> [--policy <baseline|dap|ta-dap|sbd|sbd-wt|batman>]
//!            [--cores N] [--arch <sectored|alloy|edram>] [--instructions N]
//!     Run one rate-N workload and print the full statistics.
//! dapctl record <benchmark> <file> [--ops N]
//!     Record a clone's access trace to a DAPTRACE file.
//! dapctl replay <file> [--cores N] [--policy ...] [--instructions N]
//!     Drive every core with a recorded trace.
//! dapctl trace <benchmark> [--policy <dap|ta-dap>] [--cores N] [--arch A]
//!              [--instructions N] [--out DIR]
//!     Run one workload with per-window DAP tracing: print the human
//!     summary and write versioned JSONL + CSV window-trace artifacts.
//! dapctl trace summarize <file> [--lenient-ok]
//!     Read a window-trace artifact (JSONL or CSV) leniently and print
//!     its human summary. Corrupt record lines are skipped with a
//!     `N records unparseable` warning and exit status 4 — pass
//!     --lenient-ok to accept partial artifacts with exit 0.
//! dapctl serve [--socket PATH | --tcp ADDR] [--resolve-every N]
//!              [--max-conns N] [--deadline-ms MS] [--metrics-addr ADDR]
//!              [--flight-dump PATH]
//!     Run the dapd partitioning daemon on a Unix socket (default
//!     target/dapd.sock) or TCP address, with the stock two-backend
//!     (HBM + DDR4) two-tenant configuration. Runs until a client sends
//!     Shutdown (`dapctl loadgen --shutdown` does). Beyond --max-conns
//!     concurrent connections (default 64) new peers are shed with
//!     `Reject(Overloaded)`; a peer that stalls longer than
//!     --deadline-ms (default 5000) is disconnected. A stale socket
//!     file left by a crashed daemon is probed and reclaimed; a live
//!     daemon's socket is never stolen. With --metrics-addr (e.g.
//!     127.0.0.1:0), an ops HTTP endpoint serves GET /metrics
//!     (Prometheus text), /healthz, /varz (JSON operator snapshot), and
//!     /debug/flight (flight-recorder JSONL). The flight ring is dumped
//!     to --flight-dump (default target/dapd-flight.jsonl) on SIGUSR1,
//!     on panic, and when the reject rate spikes.
//! dapctl top <addr> [--interval-ms MS] [--iterations N]
//!     Live operator view of a serving daemon: polls /varz on the ops
//!     endpoint every --interval-ms (default 1000) and renders tenant ×
//!     backend fractions, decisions/s, windows/s, shed rate, and p99
//!     decision latency to stderr (in-place rewrite on a TTY, plain
//!     lines otherwise / under DAP_QUIET=1). --iterations N exits after
//!     N polls (CI); default runs until the endpoint goes away.
//! dapctl scrape <target> [--path P] [--check]
//!     Fetch an ops endpoint (target host:port, path default /metrics)
//!     or read a local file, print the body to stdout. With --check,
//!     validate it: Prometheus expositions go through the in-tree
//!     format checker, flight dumps (first line schema "dap-flight")
//!     through the flight parser; invalid input exits 4.
//! dapctl loadgen [--socket PATH | --tcp ADDR] [--requests N]
//!                [--bench B] [--throttle-after N] [--throttle-factor F]
//!                [--retries N] [--shutdown]
//!     Drive a running daemon with a workload-clone-shaped request
//!     stream: route every request, report synthetic service at nominal
//!     rate (optionally throttling backend 0 by --throttle-factor after
//!     --throttle-after requests), print the routed split and final
//!     stats. With --retries N (default 0: fail fast), each call is
//!     retried up to N times with jittered exponential backoff and the
//!     run rides through daemon restarts and sheds, reporting how many
//!     calls were lost. --shutdown stops the daemon afterwards.
//! dapctl explore [--grid <smoke|std>] [--workers N] [--out DIR]
//!                [--instructions N] [--ttl-ms MS] [--poison-k K]
//!                [--max-restarts N] [--metrics-addr ADDR]
//!     Explore a named design-space grid with N crash-tolerant worker
//!     processes coordinating through a lease log in --out (default
//!     target/explore). Workers that crash are restarted with backoff
//!     (up to --max-restarts per slot); leases left by dead workers
//!     expire after --ttl-ms and are stolen by survivors; a cell that
//!     fails --poison-k times fleet-wide is quarantined. Afterwards the
//!     per-worker manifests are merged (duplicate completions must be
//!     bit-identical), `merged.ckpt` + `fleet.prom` are written, and
//!     the per-mix Pareto frontier (speedup vs DRAM-cache capacity vs
//!     energy proxy) is printed. Exit 1 if any cell is missing or
//!     manifests diverge. Re-running resumes from the same --out.
//!     While the fleet runs, `fleet.prom` is rewritten atomically about
//!     once a second from the live lease log (and deleted if the merge
//!     hard-fails, so a stale file can't masquerade as a result); with
//!     --metrics-addr the same live exposition is served over HTTP
//!     (GET /metrics, /healthz) for mid-run scraping.
//! dapctl bench [--label L] [--out DIR] [--instructions N]
//!              [--compare BASELINE.json] [--threshold PCT] [--warn-only]
//!              [--update-baseline LABEL]
//!     Time the pinned regression suite and write BENCH_<label>.json.
//!     With --compare, flag cells slower than the baseline by more than
//!     the threshold (default 10%) and exit 3 (0 with --warn-only);
//!     unless --instructions is given, the run adopts the baseline's
//!     recorded per-core budget so the wall-clock times are comparable.
//!     With --update-baseline, write BENCH_<LABEL>.json into the
//!     repository's pinned `crates/bench/baselines/` directory instead
//!     of `target/bench/`.
//! ```
//!
//! All subcommands also accept `--threads N` (worker threads for any
//! parallel experiment machinery; overrides `DAP_THREADS`).

use std::sync::Arc;

use dap_telemetry::{MetricsRegistry, TraceMeta, WindowTraceRecorder};
use experiments::runner::{build_policy, PolicyKind};
use mem_sim::trace::TraceSource;
use mem_sim::{SubsystemTelemetry, System, SystemConfig};
use workloads::{rate_mode, spec, TraceFile};

const HELP: &str = "\
dapctl — driver for the DAP reproduction: simulations, traces, benches, daemon

subcommands:
  list                       List the benchmark clones and their parameters.
  run <bench>                Run one rate-N workload and print statistics.
  record <bench> <file>      Record a clone's access trace to a DAPTRACE file.
  replay <file>              Drive every core with a recorded trace.
  trace <bench>              Run with per-window DAP tracing; write artifacts.
  trace summarize <file>     Summarize a window-trace artifact leniently.
  explore                    Explore a design-space grid with a crash-
                             tolerant multi-process worker fleet.
  bench                      Time the pinned regression suite (incl. dapd).
  serve                      Run the dapd partitioning daemon on a socket.
  loadgen                    Drive a running dapd daemon with clone traffic.
  top <addr>                 Live operator view of a serving daemon's /varz.
  scrape <target>            Fetch an ops endpoint or file; --check validates.
  help                       Show this message.

common flags:
  --policy P     baseline|dap|ta-dap|sbd|sbd-wt|batman   --cores N
  --arch A       sectored|alloy|edram                    --instructions N
  --ops N        --out DIR   --threads N   --audit[=strict|observe|off]

bench flags:
  --label L   --compare FILE   --threshold PCT   --warn-only
  --update-baseline LABEL

explore flags:
  --grid <smoke|std>   --workers N   --ttl-ms MS   --poison-k K
  --max-restarts N   --metrics-addr ADDR

daemon flags (serve/loadgen):
  --socket PATH   --tcp ADDR   --resolve-every N   --requests N   --bench B
  --throttle-after N   --throttle-factor F   --shutdown
  --max-conns N   --deadline-ms MS   --retries N
  --metrics-addr ADDR   --flight-dump PATH

ops flags (top/scrape):
  --interval-ms MS   --iterations N   --path P   --check

exit codes: 0 ok, 2 usage, 3 bench regression, 4 artifact parse errors,
5 unknown subcommand, 130 interrupted
";

fn usage() -> ! {
    eprint!("{HELP}");
    std::process::exit(2);
}

/// Exit status for a subcommand `dapctl` does not know. Distinct from
/// general usage errors (2) so scripts can tell a typo'd subcommand from
/// a malformed flag.
const EXIT_UNKNOWN_SUBCOMMAND: i32 = 5;

/// Exit status when `trace summarize` skipped unparseable records and
/// `--lenient-ok` was not given. Distinct from usage errors (2) and
/// bench regressions (3).
const EXIT_PARSE_ERRORS: i32 = 4;

struct Args {
    positional: Vec<String>,
    policy: Option<PolicyKind>,
    cores: usize,
    arch: String,
    instructions: Option<u64>,
    ops: u64,
    out: Option<String>,
    label: String,
    compare: Option<String>,
    threshold: f64,
    warn_only: bool,
    lenient_ok: bool,
    update_baseline: Option<String>,
    socket: Option<String>,
    tcp: Option<String>,
    resolve_every: u32,
    requests: u64,
    bench_clone: String,
    throttle_after: Option<u64>,
    throttle_factor: f64,
    shutdown: bool,
    max_conns: usize,
    deadline_ms: u64,
    retries: u32,
    grid: String,
    workers: u32,
    ttl_ms: u64,
    poison_k: u32,
    max_restarts: u32,
    worker_id: Option<u32>,
    incarnation: u32,
    metrics_addr: Option<String>,
    flight_dump: Option<String>,
    interval_ms: u64,
    iterations: Option<u64>,
    scrape_path: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        positional: Vec::new(),
        policy: None,
        cores: 8,
        arch: "sectored".to_string(),
        instructions: None,
        ops: 100_000,
        out: None,
        label: "local".to_string(),
        compare: None,
        threshold: dap_bench::regress::DEFAULT_THRESHOLD_PCT,
        warn_only: false,
        lenient_ok: false,
        update_baseline: None,
        socket: None,
        tcp: None,
        resolve_every: 64,
        requests: 10_000,
        bench_clone: "mcf".to_string(),
        throttle_after: None,
        throttle_factor: 0.25,
        shutdown: false,
        max_conns: 64,
        deadline_ms: 5_000,
        retries: 0,
        grid: "std".to_string(),
        workers: 4,
        ttl_ms: 2_000,
        poison_k: 3,
        max_restarts: 2,
        worker_id: None,
        incarnation: 1,
        metrics_addr: None,
        flight_dump: None,
        interval_ms: 1_000,
        iterations: None,
        scrape_path: "/metrics".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--policy" => {
                args.policy = Some(match value("--policy").as_str() {
                    "baseline" => PolicyKind::Baseline,
                    "dap" => PolicyKind::Dap,
                    "ta-dap" => PolicyKind::ThreadAwareDap,
                    "sbd" => PolicyKind::Sbd,
                    "sbd-wt" => PolicyKind::SbdWt,
                    "batman" => PolicyKind::Batman,
                    other => {
                        eprintln!("unknown policy {other}");
                        usage()
                    }
                })
            }
            "--cores" => args.cores = value("--cores").parse().unwrap_or_else(|_| usage()),
            "--arch" => args.arch = value("--arch"),
            "--instructions" => {
                args.instructions =
                    Some(value("--instructions").parse().unwrap_or_else(|_| usage()))
            }
            "--ops" => args.ops = value("--ops").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value("--out")),
            "--label" => args.label = value("--label"),
            "--compare" => args.compare = Some(value("--compare")),
            "--threshold" => {
                args.threshold = value("--threshold").parse().unwrap_or_else(|_| usage())
            }
            "--warn-only" => args.warn_only = true,
            "--update-baseline" => {
                args.update_baseline = Some(value("--update-baseline"));
            }
            "--lenient-ok" => args.lenient_ok = true,
            "--socket" => args.socket = Some(value("--socket")),
            "--tcp" => args.tcp = Some(value("--tcp")),
            "--resolve-every" => {
                args.resolve_every = value("--resolve-every").parse().unwrap_or_else(|_| usage())
            }
            "--requests" => args.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--bench" => args.bench_clone = value("--bench"),
            "--throttle-after" => {
                args.throttle_after = Some(
                    value("--throttle-after")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--throttle-factor" => {
                args.throttle_factor = value("--throttle-factor")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--shutdown" => args.shutdown = true,
            "--max-conns" => {
                args.max_conns = value("--max-conns").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--retries" => args.retries = value("--retries").parse().unwrap_or_else(|_| usage()),
            "--grid" => args.grid = value("--grid"),
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--ttl-ms" => args.ttl_ms = value("--ttl-ms").parse().unwrap_or_else(|_| usage()),
            "--poison-k" => args.poison_k = value("--poison-k").parse().unwrap_or_else(|_| usage()),
            "--max-restarts" => {
                args.max_restarts = value("--max-restarts").parse().unwrap_or_else(|_| usage())
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--flight-dump" => args.flight_dump = Some(value("--flight-dump")),
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms").parse().unwrap_or_else(|_| usage())
            }
            "--iterations" => {
                args.iterations = Some(value("--iterations").parse().unwrap_or_else(|_| usage()))
            }
            "--path" => args.scrape_path = value("--path"),
            "--check" => args.check = true,
            // Internal: `explore` re-invokes itself with these to run as
            // one worker of the fleet. Not in the help text on purpose.
            "--worker-id" => {
                args.worker_id = Some(value("--worker-id").parse().unwrap_or_else(|_| usage()))
            }
            "--incarnation" => {
                args.incarnation = value("--incarnation").parse().unwrap_or_else(|_| usage())
            }
            "--threads" => {
                let v = value("--threads");
                dap_bench::cli::apply_threads("dapctl", Some(&v));
            }
            "--audit" => dap_core::audit::set_mode_override(Some(dap_core::AuditMode::Strict)),
            other if other.starts_with("--audit=") => {
                let mode = dap_core::audit::parse_mode(&other["--audit=".len()..]);
                dap_core::audit::set_mode_override(Some(mode));
            }
            _ => args.positional.push(a),
        }
    }
    args
}

fn policy_for(kind: PolicyKind, config: &SystemConfig) -> Box<dyn mem_sim::Partitioner> {
    build_policy(kind, config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

fn config_for(arch: &str, cores: usize) -> SystemConfig {
    match arch {
        "sectored" => SystemConfig::sectored_dram_cache(cores),
        "alloy" => SystemConfig::alloy_cache(cores),
        "edram" => SystemConfig::edram_cache(cores, 256),
        other => {
            eprintln!("unknown architecture {other}");
            usage()
        }
    }
}

fn print_result(r: &mem_sim::RunResult) {
    let s = &r.stats;
    println!("total IPC            {:.4}", r.total_ipc());
    println!("L3 MPKI              {:.1}", r.l3_mpki());
    println!("MS$ hit ratio        {:.4}", s.ms_hit_ratio());
    println!(
        "MM CAS fraction      {:.4}  (sectored/eDRAM optimum 0.27, Alloy 0.36)",
        s.mm_cas_fraction()
    );
    println!("avg read latency     {:.0} cycles", s.avg_read_latency());
    println!("tag-cache miss ratio {:.4}", s.tag_cache_miss_ratio());
    println!(
        "fills {} (bypassed {})  WB {}  IFRM {}  SFRM {} (wasted {})  WT {}",
        s.fills,
        s.fills_bypassed,
        s.writes_bypassed,
        s.forced_read_misses,
        s.speculative_forced,
        s.speculative_wasted,
        s.write_throughs
    );
    if let Some(d) = r.dap_decisions {
        let [fwb, wb, ifrm, sfrm] = d.mix();
        println!(
            "DAP: {} decisions (FWB {:.0}% WB {:.0}% IFRM {:.0}% SFRM {:.0}%), partitioned {}/{} windows",
            d.total_decisions(),
            fwb * 100.0,
            wb * 100.0,
            ifrm * 100.0,
            sfrm * 100.0,
            d.windows_partitioned,
            d.windows_total
        );
    }
    for (i, core) in r.per_core.iter().enumerate() {
        println!(
            "core {i:2}: {} instructions, {} cycles, IPC {:.3}",
            core.instructions,
            core.cycles,
            core.ipc()
        );
    }
}

fn main() {
    dap_bench::cli::run_interruptible("dapctl", || {
        let args = parse_args();
        match args.positional.first().map(String::as_str) {
            Some("list") => {
                println!(
                    "{:<16} {:>9} {:>5} {:>7} {:>7} {:>8} {:>5} sensitivity",
                    "benchmark", "paper-MB", "gap", "writes", "chase", "streams", "hot"
                );
                for s in workloads::all_specs() {
                    println!(
                        "{:<16} {:>9} {:>5} {:>6.0}% {:>6.0}% {:>8} {:>4.0}% {:?}",
                        s.name,
                        s.footprint_mb,
                        s.gap_mean,
                        s.write_fraction * 100.0,
                        s.chase_fraction * 100.0,
                        s.streams,
                        s.hot_fraction * 100.0,
                        s.sensitivity
                    );
                }
            }
            Some("run") => {
                let bench = args
                    .positional
                    .get(1)
                    .map(String::as_str)
                    .unwrap_or_else(|| usage());
                let spec = spec(bench).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {bench} (try `dapctl list`)");
                    std::process::exit(2);
                });
                let kind = args.policy.unwrap_or(PolicyKind::Baseline);
                let config = config_for(&args.arch, args.cores);
                let policy = policy_for(kind, &config);
                let mut sys = System::with_policy(config, rate_mode(spec, args.cores), policy);
                let r = sys.run(args.instructions.unwrap_or(400_000));
                println!(
                    "{bench} rate-{} on {} with {kind:?}:",
                    args.cores, args.arch
                );
                print_result(&r);
            }
            Some("record") => {
                let bench = args
                    .positional
                    .get(1)
                    .map(String::as_str)
                    .unwrap_or_else(|| usage());
                let file = args.positional.get(2).unwrap_or_else(|| usage());
                let spec = spec(bench).unwrap_or_else(|| usage());
                let mut src = workloads::CloneTrace::new(spec, 0x1000_0000, 0);
                workloads::record(&mut src, args.ops, file).unwrap_or_else(|e| {
                    eprintln!("error: cannot record trace to {file}: {e}");
                    std::process::exit(1);
                });
                println!("recorded {} operations of {bench} to {file}", args.ops);
            }
            Some("replay") => {
                let file = args.positional.get(1).unwrap_or_else(|| usage());
                let kind = args.policy.unwrap_or(PolicyKind::Baseline);
                let config = config_for(&args.arch, args.cores);
                let policy = policy_for(kind, &config);
                let traces: Vec<Box<dyn TraceSource>> = (0..args.cores)
                    .map(|_| {
                        Box::new(TraceFile::open(file).unwrap_or_else(|e| {
                            eprintln!("error: cannot load trace {file}: {e}");
                            std::process::exit(1);
                        })) as Box<dyn TraceSource>
                    })
                    .collect();
                let mut sys = System::with_policy(config, traces, policy);
                let r = sys.run(args.instructions.unwrap_or(400_000));
                println!("replay of {file} on {} cores with {kind:?}:", args.cores);
                print_result(&r);
            }
            Some("trace") => {
                let bench = args
                    .positional
                    .get(1)
                    .map(String::as_str)
                    .unwrap_or_else(|| usage());
                if bench == "summarize" {
                    let file = args.positional.get(2).unwrap_or_else(|| usage());
                    summarize_artifact(file, args.lenient_ok);
                    return;
                }
                let spec = spec(bench).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {bench} (try `dapctl list`)");
                    std::process::exit(2);
                });
                // Tracing needs a DAP controller to trace; default to full DAP.
                let kind = args.policy.unwrap_or(PolicyKind::Dap);
                if !matches!(kind, PolicyKind::Dap | PolicyKind::ThreadAwareDap) {
                    eprintln!(
                        "error: `dapctl trace` records the DAP controller's window \
                         decisions; --policy must be dap or ta-dap, not {kind:?}"
                    );
                    std::process::exit(2);
                }
                if !dap_telemetry::enabled() {
                    eprintln!(
                        "error: this binary was built with --features telemetry-off; \
                         rebuild without it to record traces"
                    );
                    std::process::exit(2);
                }
                let config = config_for(&args.arch, args.cores);
                let policy = policy_for(kind, &config);
                let mut sys = System::with_policy(config, rate_mode(spec, args.cores), policy);
                let recorder = Arc::new(WindowTraceRecorder::new(1 << 16));
                sys.attach_dap_sink(recorder.clone());
                let registry = MetricsRegistry::new();
                sys.attach_telemetry(SubsystemTelemetry::new(&registry));
                let r = sys.run(args.instructions.unwrap_or(400_000));
                // Profile rollups must be read before `take()` clears
                // both recorder rings.
                let profile = recorder.profile_windows();
                let trace = recorder.take();
                let meta = TraceMeta {
                    label: format!("{bench}/rate-{}", args.cores),
                    arch: args.arch.clone(),
                    window_cycles: 64,
                };
                println!(
                    "{bench} rate-{} on {} with {kind:?}:",
                    args.cores, args.arch
                );
                print_result(&r);
                println!();
                print!("{}", dap_telemetry::summarize(&meta, &trace));
                print!("{}", dap_telemetry::summarize_profile_windows(&profile));
                let snapshot = registry.snapshot();
                if let Some(h) = snapshot.histograms.get("mem.read_latency") {
                    println!(
                        "demand read latency    mean {:.0} cycles over {} reads",
                        h.mean().unwrap_or(0.0),
                        h.count
                    );
                }
                let out = std::path::PathBuf::from(
                    args.out.as_deref().unwrap_or("target/telemetry/dapctl"),
                );
                // Benchmark names contain dots ("soplex.ref"): append the
                // extension instead of `with_extension`, which truncates.
                let stem = format!("{bench}-rate{}-{}", args.cores, args.arch);
                let jsonl = out.join(format!("{stem}.jsonl"));
                let csv = out.join(format!("{stem}.csv"));
                for result in [
                    dap_telemetry::export::write_window_trace_jsonl(&jsonl, &meta, &trace),
                    dap_telemetry::export::write_window_trace_csv(&csv, &meta, &trace),
                ] {
                    if let Err(e) = result {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
                println!();
                println!("artifacts:");
                println!("  {}", jsonl.display());
                println!("  {}", csv.display());
            }
            Some("bench") => {
                // Parse the baseline up front (when comparing) so the
                // run can adopt its recorded per-core budget: comparing
                // wall times across different budgets is meaningless and
                // compare() rejects it.
                let baseline = args.compare.as_ref().map(|baseline_path| {
                    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
                        eprintln!("error: cannot read baseline {baseline_path}: {e}");
                        std::process::exit(1);
                    });
                    dap_bench::regress::report_from_json(&text).unwrap_or_else(|e| {
                        eprintln!("error: baseline {baseline_path}: {e}");
                        std::process::exit(1);
                    })
                });
                // The suite default is smaller than the ad-hoc `run`
                // default: four cells run back to back.
                let instructions = args
                    .instructions
                    .or(baseline.as_ref().map(|b| b.instructions))
                    .unwrap_or(150_000);
                let label = args.update_baseline.as_ref().unwrap_or(&args.label);
                let report = dap_bench::regress::run_suite(label, instructions);
                print!("{}", dap_bench::regress::render_report(&report));
                // --update-baseline pins the report next to the sources
                // (the path is compiled in; the tool is repo-local), so a
                // fresh machine class can re-anchor `--compare` in one
                // step instead of hand-copying from target/.
                let dir = if args.update_baseline.is_some() {
                    std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines"))
                } else {
                    std::path::PathBuf::from(args.out.as_deref().unwrap_or("target/bench"))
                };
                match dap_bench::regress::write_report(&dir, &report) {
                    Ok(path) => println!("report: {}", path.display()),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
                if let (Some(baseline), Some(baseline_path)) = (baseline, &args.compare) {
                    let regressions =
                        dap_bench::regress::compare(&report, &baseline, args.threshold);
                    if regressions.is_empty() {
                        println!(
                            "compare: no regressions vs {} ({}%, baseline {})",
                            baseline_path, args.threshold, baseline.label
                        );
                    } else {
                        for regression in &regressions {
                            eprintln!("regression: {regression}");
                        }
                        if args.warn_only {
                            eprintln!(
                                "compare: {} regression(s) vs {baseline_path} (warn-only)",
                                regressions.len()
                            );
                        } else {
                            std::process::exit(dap_bench::regress::EXIT_REGRESSION);
                        }
                    }
                }
            }
            Some("help") => print!("{HELP}"),
            Some("explore") => explore(&args),
            Some("serve") => serve(&args),
            Some("loadgen") => loadgen(&args),
            Some("top") => top(&args),
            Some("scrape") => scrape(&args),
            Some(other) => {
                eprintln!("dapctl: unknown subcommand `{other}` (try `dapctl help`)");
                std::process::exit(EXIT_UNKNOWN_SUBCOMMAND);
            }
            None => usage(),
        }
    });
}

/// `dapctl explore`: a crash-tolerant multi-process design-space
/// exploration. With `--worker-id` (internal) this process *is* one
/// worker of the fleet; otherwise it supervises `--workers` child
/// processes (spawned as `current_exe() explore --worker-id I ...`),
/// then merges their manifests and reports the Pareto frontier.
fn explore(args: &Args) {
    let instructions = args.instructions.unwrap_or(40_000);
    let grid = experiments::explore_grid(&args.grid, instructions).unwrap_or_else(|| {
        eprintln!(
            "unknown grid {:?} (available: {})",
            args.grid,
            experiments::shard::grid_names().join(", ")
        );
        std::process::exit(2);
    });
    let out_dir = std::path::PathBuf::from(args.out.as_deref().unwrap_or("target/explore"));
    let cancel = experiments::global_cancel_token();

    if let Some(worker_id) = args.worker_id {
        // Worker mode: drain the grid, then exit. Interruption is
        // handled by run_interruptible's global token (exit 130).
        let summary = experiments::run_worker(&experiments::WorkerConfig {
            out_dir,
            worker_id,
            incarnation: args.incarnation,
            grid,
            ttl_ms: args.ttl_ms,
            quarantine_k: args.poison_k,
            cancel: cancel.clone(),
        })
        .unwrap_or_else(|e| {
            eprintln!("error: worker {worker_id}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "[w{worker_id}.{}] exit: {} completed, {} failed, {} abandoned",
            args.incarnation, summary.completed, summary.failed, summary.abandoned
        );
        return;
    }

    if args.workers == 0 {
        eprintln!("--workers must be at least 1");
        std::process::exit(2);
    }
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("error: cannot locate own binary: {e}");
        std::process::exit(1);
    });
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    println!(
        "explore: grid {} ({} cells) with {} workers into {}",
        grid.name,
        grid.cells.len(),
        args.workers,
        out_dir.display()
    );
    let start = std::time::Instant::now();
    let supervisor = experiments::SupervisorConfig {
        workers: args.workers,
        max_restarts: args.max_restarts,
        ..experiments::SupervisorConfig::default()
    };
    let prom = out_dir.join("fleet.prom");
    let total_cells = grid.cells.len();
    // The live fleet exposition: the supervision tick rewrites
    // fleet.prom atomically about once a second from the lease log, and
    // the optional ops endpoint serves whatever the file last said — so
    // a scrape mid-run never sees a torn write.
    let fleet_log =
        experiments::LeaseLog::open(&out_dir.join("lease.log"), args.ttl_ms, args.poison_k).ok();
    let _fleet_ops = args.metrics_addr.as_deref().map(|addr| {
        let prom_path = prom.clone();
        let router: dap_telemetry::OpsRouter = Arc::new(move |path: &str| match path {
            "/metrics" => match std::fs::read_to_string(&prom_path) {
                Ok(text) => dap_telemetry::OpsResponse::ok_text(text),
                Err(_) => dap_telemetry::OpsResponse::ok_text(String::new()),
            },
            "/healthz" => dap_telemetry::OpsResponse::ok_text("ok\n".to_string()),
            _ => dap_telemetry::OpsResponse::not_found(),
        });
        let server = dap_telemetry::OpsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind metrics endpoint {addr}: {e}");
            std::process::exit(1);
        });
        let bound = server.local_addr().unwrap();
        let handle = server.spawn(router).unwrap_or_else(|e| {
            eprintln!("error: cannot start metrics endpoint: {e}");
            std::process::exit(1);
        });
        println!("explore: fleet metrics on http://{bound}/metrics");
        handle
    });
    let mut last_prom = std::time::Instant::now() - std::time::Duration::from_secs(1);
    let outcome = experiments::supervise_with_tick(
        &supervisor,
        |worker_id, incarnation| {
            std::process::Command::new(&exe)
                .arg("explore")
                .arg("--out")
                .arg(&out_dir)
                .arg("--grid")
                .arg(&args.grid)
                .arg("--instructions")
                .arg(instructions.to_string())
                .arg("--ttl-ms")
                .arg(args.ttl_ms.to_string())
                .arg("--poison-k")
                .arg(args.poison_k.to_string())
                .arg("--worker-id")
                .arg(worker_id.to_string())
                .arg("--incarnation")
                .arg(incarnation.to_string())
                .spawn()
        },
        cancel,
        |fleet| {
            if last_prom.elapsed() < std::time::Duration::from_secs(1) {
                return;
            }
            last_prom = std::time::Instant::now();
            if let Some(log) = &fleet_log {
                if let Ok(snapshot) = log.snapshot() {
                    let text = experiments::live_fleet_exposition(&snapshot, total_cells, fleet);
                    if let Err(e) = write_atomic(&prom, &text) {
                        eprintln!("warning: cannot rewrite {}: {e}", prom.display());
                    }
                }
            }
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: fleet supervision failed: {e}");
        std::process::exit(1);
    });
    if cancel.is_cancelled() {
        // run_interruptible turns this into exit 130 with the resume hint.
        return;
    }
    let report =
        experiments::merge_worker_manifests(&out_dir, &grid, args.poison_k, outcome.restarts)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                // A failed merge means the fleet's results are suspect: a
                // stale live exposition must not outlive it and read as
                // healthy to a scraper.
                let _ = std::fs::remove_file(&prom);
                std::process::exit(1);
            });
    let merged = out_dir.join("merged.ckpt");
    for result in [
        experiments::write_merged_manifest(&report, &merged),
        write_atomic(&prom, &report.exposition()),
    ] {
        if let Err(e) = result {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "explore: fleet drained in {:.1}s ({} crashes, {} restarts, {} slots abandoned)",
        start.elapsed().as_secs_f64(),
        outcome.crashes,
        outcome.restarts,
        outcome.abandoned_slots
    );
    print!("{}", report.summary());
    let points = experiments::pareto_points(&report, &grid);
    print!("{}", experiments::pareto_report(&points));
    println!();
    println!("artifacts:");
    println!("  {}", merged.display());
    println!("  {}", prom.display());
    if !report.is_complete() {
        eprintln!(
            "error: {} cell(s) unaccounted for — re-run the same command to resume",
            report.missing.len()
        );
        std::process::exit(1);
    }
}

/// Default Unix socket path shared by `serve` and `loadgen`.
const DEFAULT_SOCKET: &str = "target/dapd.sock";

/// Default flight-recorder dump path for `serve`.
const DEFAULT_FLIGHT_DUMP: &str = "target/dapd-flight.jsonl";

/// Writes `text` to `path` atomically (same-directory tmp + rename), so
/// a concurrent reader sees either the old file or the new one, never a
/// torn write.
fn write_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// `dapctl serve`: run the dapd daemon until a client asks it to stop.
fn serve(args: &Args) {
    let mut config = dapd::EngineConfig::hbm_ddr4_pair();
    config.resolve_every = args.resolve_every;
    let engine = dapd::Engine::new(config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let flight_dump =
        std::path::PathBuf::from(args.flight_dump.as_deref().unwrap_or(DEFAULT_FLIGHT_DUMP));
    if let Some(parent) = flight_dump.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let deadline = std::time::Duration::from_millis(args.deadline_ms);
    let server_config = dapd::ServerConfig {
        read_deadline: deadline,
        write_deadline: deadline,
        max_connections: args.max_conns,
        flight_dump_path: Some(flight_dump.clone()),
        ..dapd::ServerConfig::default()
    };
    let handle = if let Some(addr) = &args.tcp {
        let server = dapd::Server::bind_tcp(addr, engine)
            .and_then(|s| s.with_config(server_config))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot bind {addr}: {e}");
                std::process::exit(1);
            });
        println!("dapd listening on tcp {}", server.local_addr().unwrap());
        server.spawn()
    } else {
        let path = args
            .socket
            .clone()
            .unwrap_or_else(|| DEFAULT_SOCKET.to_string());
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        // bind_unix probes an existing socket file: a stale one (crashed
        // daemon) is reclaimed, a live daemon's is left alone.
        let server = dapd::Server::bind_unix(std::path::Path::new(&path), engine)
            .and_then(|s| s.with_config(server_config))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot bind {path}: {e}");
                std::process::exit(1);
            });
        println!("dapd listening on unix {path}");
        server.spawn()
    };
    let handle = handle.unwrap_or_else(|e| {
        eprintln!("error: cannot start acceptor: {e}");
        std::process::exit(1);
    });
    // Crash-safety: the flight ring is dumped on panic (hook) and on
    // SIGUSR1 (polled below), independent of anyone scraping.
    let flight = handle.with_engine(|e| Arc::clone(e.flight()));
    dap_telemetry::flight::install_panic_dump(Arc::clone(&flight), flight_dump.clone(), "dapd");
    dap_bench::sigint::install_usr1();
    let _ops = args.metrics_addr.as_deref().map(|addr| {
        let server = dap_telemetry::OpsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind metrics endpoint {addr}: {e}");
            std::process::exit(1);
        });
        let bound = server.local_addr().unwrap();
        let ops = server
            .spawn(dapd::ops_router(handle.ops_view()))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot start metrics endpoint: {e}");
                std::process::exit(1);
            });
        println!("dapd metrics on http://{bound}");
        ops
    });
    // Wait for shutdown cooperatively instead of a blocking join, so
    // SIGUSR1 flight dumps and Ctrl-C both work while serving.
    let cancel = experiments::global_cancel_token();
    while !handle.stopping() {
        if cancel.is_cancelled() {
            handle.request_stop();
            break;
        }
        if dap_bench::sigint::take_usr1() {
            match flight.dump_to(&flight_dump, "dapd") {
                Ok(()) => eprintln!(
                    "dapd: SIGUSR1; flight ring dumped to {}",
                    flight_dump.display()
                ),
                Err(e) => eprintln!("dapd: SIGUSR1 flight dump failed: {e}"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    if let Err(e) = handle.join() {
        eprintln!("error: daemon exited abnormally: {e}");
        std::process::exit(1);
    }
    println!("dapd: clean shutdown");
}

/// `dapctl top`: poll a serving daemon's `/varz` and render a live
/// operator line — fractions vs the Eq. 4 ideal per backend, decision
/// and window rates, shed rate, p99 decision latency. On a TTY the line
/// rewrites in place (`\r`, like the grid progress reporter); piped or
/// under `DAP_QUIET=1` it prints one line per poll.
fn top(args: &Args) {
    use std::io::IsTerminal;

    let addr = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let addr = addr.strip_prefix("http://").unwrap_or(addr);
    let interval = std::time::Duration::from_millis(args.interval_ms.max(50));
    let timeout = std::time::Duration::from_secs(2);
    let quiet = std::env::var(experiments::progress::QUIET_ENV).is_ok_and(|v| v.trim() == "1");
    let tty = std::io::stderr().is_terminal() && !quiet;
    let mut prev: Option<(std::time::Instant, TopCounters)> = None;
    let mut consecutive_errors = 0u32;
    let mut polls = 0u64;
    loop {
        match dap_telemetry::http::http_get(addr, "/varz", timeout) {
            Ok((200, body)) => match dap_telemetry::json::parse(&body) {
                Ok(varz) => {
                    consecutive_errors = 0;
                    let line = render_top_line(&varz, &mut prev);
                    if tty {
                        eprint!("\r{line:<110}");
                    } else {
                        eprintln!("{line}");
                    }
                }
                Err(e) => {
                    consecutive_errors += 1;
                    eprintln!("top: unparseable /varz: {e}");
                }
            },
            Ok((status, _)) => {
                consecutive_errors += 1;
                eprintln!("top: /varz answered {status}");
            }
            Err(e) => {
                consecutive_errors += 1;
                eprintln!("top: {addr}: {e}");
            }
        }
        if consecutive_errors >= 3 {
            if tty {
                eprintln!();
            }
            eprintln!("top: endpoint gone (3 consecutive failures)");
            std::process::exit(1);
        }
        polls += 1;
        if args.iterations.is_some_and(|n| polls >= n) {
            if tty {
                eprintln!();
            }
            return;
        }
        std::thread::sleep(interval);
    }
}

/// The monotone counters `top` differentiates into rates.
#[derive(Clone, Copy)]
struct TopCounters {
    decisions: f64,
    resolves: f64,
    shed: f64,
}

fn counter_of(varz: &dap_telemetry::json::Json, name: &str) -> f64 {
    varz.get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0)
}

/// One `top` status line from a `/varz` snapshot; rates come from the
/// delta against the previous poll (dashes on the first).
fn render_top_line(
    varz: &dap_telemetry::json::Json,
    prev: &mut Option<(std::time::Instant, TopCounters)>,
) -> String {
    let now = std::time::Instant::now();
    let counters = TopCounters {
        decisions: counter_of(varz, "dapd_decisions_total"),
        resolves: counter_of(varz, "dapd_resolves_total"),
        shed: counter_of(varz, "dapd_shed_total"),
    };
    let rates = prev.replace((now, counters)).map(|(t0, old)| {
        let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
        (
            (counters.decisions - old.decisions) / dt,
            (counters.resolves - old.resolves) / dt,
            (counters.shed - old.shed) / dt,
        )
    });
    let mut line = match rates {
        Some((dec, win, shed)) => {
            format!("dapd | {dec:.0} dec/s | {win:.1} win/s | {shed:.1} shed/s")
        }
        None => format!(
            "dapd | {:.0} decisions | {:.0} windows | {:.0} shed",
            counters.decisions, counters.resolves, counters.shed
        ),
    };
    if let Some(p99) = varz.get("p99_decision_ns").and_then(|v| v.as_f64()) {
        line.push_str(&format!(" | p99 {:.1}us", p99 / 1_000.0));
    }
    if let Some(backends) = varz.get("backends").and_then(|b| b.as_arr()) {
        for backend in backends {
            let name = backend.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let frac = backend
                .get("fraction")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let ideal = backend
                .get("ideal_fraction")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            line.push_str(&format!(" | {name} {frac:.3}/{ideal:.3}"));
        }
    }
    if let Some(tenants) = varz.get("tenants").and_then(|t| t.as_arr()) {
        for tenant in tenants {
            let name = tenant.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let reserved = tenant
                .get("reserved_remaining_bytes")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            line.push_str(&format!(" | {name} {:.0}M", reserved / 1e6));
        }
    }
    line
}

/// `dapctl scrape`: fetch one ops endpoint (or read a file), print the
/// body to stdout, and — with `--check` — validate it with the in-tree
/// checkers: Prometheus expositions through `check_exposition`, flight
/// dumps through `parse_flight_dump`, other JSON through the reader.
fn scrape(args: &Args) {
    let target = args.positional.get(1).unwrap_or_else(|| usage());
    let body = if std::path::Path::new(target).is_file() {
        std::fs::read_to_string(target).unwrap_or_else(|e| {
            eprintln!("error: cannot read {target}: {e}");
            std::process::exit(1);
        })
    } else {
        let stripped = target.strip_prefix("http://").unwrap_or(target);
        let (addr, path) = match stripped.split_once('/') {
            Some((a, p)) => (a, format!("/{p}")),
            None => (stripped, args.scrape_path.clone()),
        };
        let (status, body) =
            dap_telemetry::http::http_get(addr, &path, std::time::Duration::from_secs(5))
                .unwrap_or_else(|e| {
                    eprintln!("error: scrape {target}: {e}");
                    std::process::exit(1);
                });
        if status != 200 {
            eprintln!("error: scrape {target}{path}: HTTP {status}");
            std::process::exit(1);
        }
        body
    };
    print!("{body}");
    if !args.check {
        return;
    }
    let first = body.lines().next().unwrap_or("");
    let verdict = if first.trim_start().starts_with('{') {
        let is_flight = dap_telemetry::json::parse(first)
            .ok()
            .and_then(|meta| {
                meta.get("schema")
                    .and_then(|s| s.as_str().map(String::from))
            })
            .is_some_and(|schema| schema == dap_telemetry::flight::FLIGHT_SCHEMA);
        if is_flight {
            dap_telemetry::flight::parse_flight_dump(&body).map(|(dropped, events)| {
                format!("flight dump: {} events, {dropped} dropped", events.len())
            })
        } else {
            dap_telemetry::json::parse(&body).map(|_| "json document".to_string())
        }
    } else {
        dap_telemetry::check_exposition(&body).map(|()| {
            let families = body.lines().filter(|l| l.starts_with("# TYPE ")).count();
            format!("exposition: {families} families")
        })
    };
    match verdict {
        Ok(what) => eprintln!("scrape: OK ({what})"),
        Err(e) => {
            eprintln!("scrape: INVALID: {e}");
            std::process::exit(EXIT_PARSE_ERRORS);
        }
    }
}

/// `dapctl loadgen`: stream clone-shaped requests at a running daemon.
fn loadgen(args: &Args) {
    let spec = spec(&args.bench_clone).unwrap_or_else(|| {
        eprintln!("unknown benchmark {} (try `dapctl list`)", args.bench_clone);
        std::process::exit(2);
    });
    // --retries N: N retry attempts beyond the first try, jittered
    // exponential backoff, riding through restarts and sheds.
    let policy = if args.retries == 0 {
        dapd::RetryPolicy::none()
    } else {
        dapd::RetryPolicy {
            max_attempts: args.retries + 1,
            ..dapd::RetryPolicy::default()
        }
    };
    let mut client = if let Some(addr) = &args.tcp {
        dapd::Client::connect_tcp_with(addr, policy)
    } else {
        let path = args
            .socket
            .clone()
            .unwrap_or_else(|| DEFAULT_SOCKET.to_string());
        dapd::Client::connect_unix_with(std::path::Path::new(&path), policy)
    }
    .unwrap_or_else(|e| {
        eprintln!("error: cannot connect to daemon: {e}");
        std::process::exit(1);
    });
    // The stock daemon config: two tenants, nominal rates for synthetic
    // service-time reports.
    let stock = dapd::EngineConfig::hbm_ddr4_pair();
    let tenants = stock.tenants.len() as u16;
    let nominal: Vec<f64> = stock.backends.iter().map(|b| b.nominal_gbps).collect();
    let mut stream = workloads::RequestStream::from_spec(spec, tenants, 0xDA9D_10AD);
    let mut routed = vec![0u64; nominal.len()];
    // Fractional-nanosecond carry per backend: a 64-byte block takes
    // under a nanosecond at HBM rates, so truncating each report alone
    // would under-report busy time and the daemon would measure garbage.
    let mut carry_ns = vec![0.0f64; nominal.len()];
    let mut lost_routes = 0u64;
    let mut lost_reports = 0u64;
    let start = std::time::Instant::now();
    for i in 0..args.requests {
        let r = stream.next_request();
        let d = match client.get_route(r.tenant, r.bytes) {
            Ok(d) => d,
            Err(e) if args.retries > 0 => {
                // Retries exhausted: warn, skip the request, keep going —
                // a fault-tolerant loadgen finishes its run.
                eprintln!("warning: route request {i} lost: {e}");
                lost_routes += 1;
                continue;
            }
            Err(e) => {
                eprintln!("error: route request {i} failed: {e}");
                std::process::exit(1);
            }
        };
        routed[d.backend] += u64::from(r.bytes);
        // Synthetic service: the chosen backend delivers at nominal rate
        // — except a throttled backend 0, which delivers at
        // `--throttle-factor` of nominal from `--throttle-after` on.
        let mut rate = nominal[d.backend];
        if d.backend == 0 && args.throttle_after.is_some_and(|n| i >= n) {
            rate *= args.throttle_factor.clamp(0.0, 1.0);
        }
        if rate > 0.0 {
            // One byte per nanosecond is 1 GB/s, so ns = bytes / GB/s.
            carry_ns[d.backend] += f64::from(r.bytes) / rate;
            let nanos = carry_ns[d.backend] as u32;
            carry_ns[d.backend] -= f64::from(nanos);
            match client.report_served(d.backend as u8, r.bytes, nanos) {
                Ok(()) => {}
                Err(e) if args.retries > 0 => {
                    eprintln!("warning: served report {i} lost: {e}");
                    lost_reports += 1;
                }
                Err(e) => {
                    eprintln!("error: served report {i} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total: u64 = routed.iter().sum::<u64>().max(1);
    println!(
        "loadgen: {} requests of {} in {:.2}s ({:.0} decisions/s)",
        args.requests,
        args.bench_clone,
        elapsed,
        args.requests as f64 / elapsed
    );
    if args.retries > 0 {
        println!(
            "  retry policy: {} reconnects, {} routes lost, {} reports lost \
             ({} indeterminate)",
            client.reconnects(),
            lost_routes,
            lost_reports,
            client.indeterminate_reports()
        );
    }
    for (i, (b, bytes)) in stock.backends.iter().zip(&routed).enumerate() {
        println!(
            "  backend {i} {:<6} {:>12} bytes  ({:.3} of total)",
            b.name,
            bytes,
            *bytes as f64 / total as f64
        );
    }
    let stats = client.snapshot_stats().unwrap_or_else(|e| {
        eprintln!("error: stats snapshot failed: {e}");
        std::process::exit(1);
    });
    print!("{stats}");
    if args.shutdown {
        client.shutdown().unwrap_or_else(|e| {
            eprintln!("error: shutdown failed: {e}");
            std::process::exit(1);
        });
        println!("loadgen: daemon acknowledged shutdown");
    }
}

/// `dapctl trace summarize`: reads a window-trace artifact leniently
/// (JSONL or CSV by extension) and prints the human digest. Unparseable
/// record lines are skipped with a warning; unless `--lenient-ok` is
/// given, they make the process exit with [`EXIT_PARSE_ERRORS`].
fn summarize_artifact(file: &str, lenient_ok: bool) {
    let path = std::path::Path::new(file);
    let parse_errors = if path.extension().is_some_and(|e| e == "csv") {
        match dap_telemetry::export::read_window_trace_csv_lenient(path) {
            Ok(recovered) => {
                // The lenient CSV reader reconstructs records only; the
                // window length lives in the JSONL twin's header.
                let meta = TraceMeta {
                    label: file.to_string(),
                    arch: String::new(),
                    window_cycles: 0,
                };
                let trace = dap_telemetry::WindowTrace {
                    records: recovered.records,
                    spilled: 0,
                    dropped: 0,
                };
                print!("{}", dap_telemetry::summarize(&meta, &trace));
                recovered.parse_errors
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match dap_telemetry::export::read_window_trace_jsonl_lenient(path) {
            Ok(recovered) => {
                print!("{}", dap_telemetry::summarize_recovered(&recovered));
                recovered.parse_errors
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    if parse_errors > 0 {
        eprintln!("warning: {parse_errors} records unparseable");
        if !lenient_ok {
            std::process::exit(EXIT_PARSE_ERRORS);
        }
    }
}
