//! Ablation study: see `experiments::ablations::ablation_refresh`.
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!("{}", experiments::ablations::ablation_refresh(instructions));
    });
}
