//! Regenerates the paper's Fig. 8 (main-memory CAS fraction).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!("{}", experiments::figures::fig08_cas_fraction(instructions));
    });
}
