//! Regenerates the paper's Table I (window size and efficiency sweep).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(250_000);
        println!(
            "{}",
            experiments::figures::table1_w_e_sensitivity(instructions)
        );
    });
}
