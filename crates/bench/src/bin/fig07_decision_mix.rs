//! Regenerates the paper's Fig. 7 (technique decision mix).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!("{}", experiments::figures::fig07_decision_mix(instructions));
    });
}
