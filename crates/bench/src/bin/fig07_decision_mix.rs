//! Regenerates the paper's Fig. 7 (technique decision mix).
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!("{}", experiments::figures::fig07_decision_mix(instructions));
}
