//! Regenerates the paper's Fig. 12 (all 44 workloads).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(200_000);
        println!(
            "{}",
            experiments::figures::fig12_all_workloads(instructions)
        );
    });
}
