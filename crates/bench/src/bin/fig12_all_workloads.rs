//! Regenerates the paper's Fig. 12 (all 44 workloads).
fn main() {
    let instructions = dap_bench::instructions(200_000);
    println!(
        "{}",
        experiments::figures::fig12_all_workloads(instructions)
    );
}
