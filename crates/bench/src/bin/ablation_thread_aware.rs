//! Ablation study: see `experiments::ablations::ablation_thread_aware`.
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!(
        "{}",
        experiments::ablations::ablation_thread_aware(instructions)
    );
}
