//! Regenerates the paper's Fig. 13 (16-core scaling).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(250_000);
        println!(
            "{}",
            experiments::figures::fig13_sixteen_cores(instructions)
        );
    });
}
