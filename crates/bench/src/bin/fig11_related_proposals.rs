//! Regenerates the paper's Fig. 11 (SBD, BATMAN vs DAP).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(300_000);
        println!(
            "{}",
            experiments::figures::fig11_related_proposals(instructions)
        );
    });
}
