//! Delivered bandwidth under injected faults: static Eq. 4 DAP vs DAP
//! re-solved against measured per-source bandwidth. Set `DAP_RESUME` to a
//! manifest path to checkpoint the grid and resume an interrupted run.
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(200_000);
        println!(
            "{}",
            experiments::figures::fig_fault_degradation(instructions)
        );
    });
}
