//! Extension: OS-visible flat-tier placement (see
//! `experiments::extensions::os_visible_tiering`).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!(
            "{}",
            experiments::extensions::os_visible_tiering(instructions)
        );
    });
}
