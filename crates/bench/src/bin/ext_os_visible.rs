//! Extension: OS-visible flat-tier placement (see
//! `experiments::extensions::os_visible_tiering`).
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!(
        "{}",
        experiments::extensions::os_visible_tiering(instructions)
    );
}
