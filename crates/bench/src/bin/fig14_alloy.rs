//! Regenerates the paper's Fig. 14 (Alloy cache with BEAR and DAP).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(300_000);
        println!("{}", experiments::figures::fig14_alloy(instructions));
        dap_bench::artifacts::maybe_emit_window_traces(
            "fig14_alloy",
            &mem_sim::SystemConfig::alloy_cache(8),
            instructions,
        );
    });
}
