//! Regenerates the paper's Fig. 14 (Alloy cache with BEAR and DAP).
fn main() {
    let instructions = dap_bench::instructions(300_000);
    println!("{}", experiments::figures::fig14_alloy(instructions));
}
