//! Regenerates the paper's Fig. 1 (delivered bandwidth vs hit rate).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!(
            "{}",
            experiments::figures::fig01_bw_vs_hitrate(instructions)
        );
        dap_bench::artifacts::maybe_emit_window_traces(
            "fig01_bw_vs_hitrate",
            &mem_sim::SystemConfig::sectored_dram_cache(8),
            instructions,
        );
    });
}
