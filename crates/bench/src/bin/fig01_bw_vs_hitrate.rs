//! Regenerates the paper's Fig. 1 (delivered bandwidth vs hit rate).
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!(
        "{}",
        experiments::figures::fig01_bw_vs_hitrate(instructions)
    );
}
