//! Regenerates the paper's Fig. 6 (DAP speedup and latency).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!("{}", experiments::figures::fig06_dap_sectored(instructions));
        dap_bench::artifacts::maybe_emit_window_traces(
            "fig06_dap_sectored",
            &mem_sim::SystemConfig::sectored_dram_cache(8),
            instructions,
        );
    });
}
