//! Regenerates the paper's Fig. 6 (DAP speedup and latency).
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!("{}", experiments::figures::fig06_dap_sectored(instructions));
}
