//! Regenerates the paper's Fig. 4 (bandwidth-sensitivity classification).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!(
            "{}",
            experiments::figures::fig04_bw_sensitivity(instructions)
        );
    });
}
