//! Regenerates the paper's Fig. 5 (SRAM tag cache).
fn main() {
    dap_bench::cli::parse_figure_args(env!("CARGO_BIN_NAME"));
    let instructions = dap_bench::instructions(400_000);
    println!("{}", experiments::figures::fig05_tag_cache(instructions));
}
