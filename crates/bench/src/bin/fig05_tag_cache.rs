//! Regenerates the paper's Fig. 5 (SRAM tag cache).
fn main() {
    dap_bench::cli::run_figure(env!("CARGO_BIN_NAME"), || {
        let instructions = dap_bench::instructions(400_000);
        println!("{}", experiments::figures::fig05_tag_cache(instructions));
    });
}
