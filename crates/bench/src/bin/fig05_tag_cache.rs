//! Regenerates the paper's Fig. 5 (SRAM tag cache).
fn main() {
    let instructions = dap_bench::instructions(400_000);
    println!("{}", experiments::figures::fig05_tag_cache(instructions));
}
