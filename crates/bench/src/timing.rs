//! A dependency-free micro-benchmark harness.
//!
//! Replaces Criterion so the workspace builds hermetically: std
//! [`Instant`] timing, automatic iteration-count calibration, a warmup
//! pass, and a median-of-N report (the median is robust to the scheduler
//! hiccups that dominate short runs). Wall-clock measurement only — no
//! statistics files, no HTML — which is all the paper-figure work needs.
//!
//! ```no_run
//! use dap_bench::timing::{black_box, Harness};
//! let mut h = Harness::new("demo");
//! h.bench("add", || black_box(2u64) + black_box(3u64));
//! h.finish();
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples per benchmark; the median of these is reported.
const SAMPLES: usize = 11;
/// Target wall-clock time per sample when calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// A group of timed micro-benchmarks sharing a printed header.
pub struct Harness {
    group: &'static str,
    ran: usize,
}

impl Harness {
    /// Starts a named benchmark group.
    pub fn new(group: &'static str) -> Self {
        println!("== bench group: {group}");
        Self { group, ran: 0 }
    }

    /// Times `f`, calibrating the iteration count so each sample runs for
    /// roughly [`TARGET_SAMPLE`], then reports the median ns/iteration
    /// over [`SAMPLES`] samples. The calibration pass doubles as warmup.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let mut iters: u64 = 1;
        loop {
            let elapsed = Self::time(iters, &mut f);
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Jump toward the target in one or two steps.
            let scale =
                (TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(2.0, 1024.0);
            iters = (iters as f64 * scale) as u64;
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| Self::time(iters, &mut f).as_nanos() as f64 / iters as f64)
            .collect();
        self.report(name, &mut samples, iters);
    }

    /// Like [`Harness::bench`] but rebuilds fresh state with `setup`
    /// before every timed call — for consuming benchmarks (e.g. running a
    /// whole simulation). Setup time is excluded from the measurement.
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> R,
    ) {
        // One warmup execution, untimed.
        black_box(run(setup()));
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let state = setup();
                let start = Instant::now();
                black_box(run(state));
                start.elapsed().as_nanos() as f64
            })
            .collect();
        self.report(name, &mut samples, 1);
    }

    fn time<R>(iters: u64, f: &mut impl FnMut() -> R) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }

    fn report(&mut self, name: &str, samples: &mut [f64], iters: u64) {
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{:<44} {:>14} ns/iter  [{} .. {}]  ({iters} iters x {SAMPLES} samples)",
            format!("{}/{name}", self.group),
            format_ns(median),
            format_ns(lo),
            format_ns(hi),
        );
        self.ran += 1;
    }

    /// Prints the group footer. Call once after the last benchmark.
    pub fn finish(self) {
        println!("== {}: {} benchmarks done", self.group, self.ran);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}m", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scales_with_iteration_count() {
        let mut work = || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i) * 17);
            }
            acc
        };
        let one = Harness::time(100, &mut work);
        let ten = Harness::time(10_000, &mut work);
        assert!(ten > one, "10000 iterations must take longer than 100");
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(12.34), "12.3");
        assert_eq!(format_ns(12_340.0), "12.34k");
        assert_eq!(format_ns(12_340_000.0), "12.34m");
    }
}
