//! Opt-in window-trace artifact emission for the figure binaries.
//!
//! Figures print their series to stdout; the machine-readable run
//! artifacts (versioned JSONL + CSV window traces, see
//! `dap_telemetry::export`) are opt-in so a plain figure run stays a
//! plain text report. Set `DAP_TELEMETRY=1` to emit them, and
//! `DAP_TELEMETRY_DIR` to choose where (default `target/telemetry`).
//!
//! The traced run is a *companion* grid — a DAP run over the first few
//! bandwidth-sensitive rate mixes on the figure's architecture — rather
//! than an instrumented rerun of the whole figure, so the artifact cost
//! scales with one policy, not the figure's full variant grid.

use experiments::runner::{AloneIpcCache, PolicyKind};
use experiments::telemetry::{
    artifact_dir_from_env, export_variant_traces, run_variant_grid_traced,
};
use mem_sim::SystemConfig;
use workloads::{bandwidth_sensitive, rate_mix};

/// Mixes in the companion traced grid: enough to show per-window
/// behavior on more than one workload without doubling figure runtime.
const TRACE_MIXES: usize = 2;

/// DAP window length used by the figure grids (`build_policy` default).
const WINDOW_CYCLES: u32 = 64;

/// When `DAP_TELEMETRY` is set (and the build is not `telemetry-off`),
/// runs a traced DAP companion grid on `config` and writes JSONL + CSV
/// window-trace artifacts for `figure`, printing the paths and a human
/// summary of the first trace. No-op otherwise.
///
/// Exits with status 1 if an artifact cannot be written, naming the path.
pub fn maybe_emit_window_traces(figure: &str, config: &SystemConfig, instructions: u64) {
    let Some(dir) = artifact_dir_from_env() else {
        return;
    };
    let mixes: Vec<_> = bandwidth_sensitive()
        .into_iter()
        .take(TRACE_MIXES)
        .map(|s| rate_mix(s, config.cores))
        .collect();
    let alone = AloneIpcCache::new();
    let variants: Vec<(&SystemConfig, PolicyKind, &str)> = vec![(config, PolicyKind::Dap, "dap")];
    let (_, telemetry) = run_variant_grid_traced(&variants, &mixes, instructions, &alone);
    let variant = &telemetry[0];
    match export_variant_traces(&dir, figure, WINDOW_CYCLES, variant) {
        Ok(paths) => {
            println!();
            println!(
                "telemetry: {} window-trace artifacts under {}",
                paths.len(),
                dir.display()
            );
            for path in &paths {
                println!("  {}", path.display());
            }
            if let Some((mix, trace)) = variant.traces.first() {
                let meta = dap_telemetry::TraceMeta {
                    label: format!("{figure}/dap/{mix}"),
                    arch: variant.arch.to_string(),
                    window_cycles: WINDOW_CYCLES,
                };
                println!();
                print!("{}", dap_telemetry::summarize(&meta, trace));
            }
            if let Some((mix, profile)) = variant.profiles.iter().find(|(_, p)| !p.is_empty()) {
                println!();
                println!("cycle attribution ({mix}):");
                print!("{}", dap_telemetry::summarize_profile_windows(profile));
            }
            println!();
            print!("{}", dap_telemetry::summarize_metrics(&variant.metrics));
        }
        Err(e) => {
            eprintln!("telemetry: {e}");
            std::process::exit(1);
        }
    }
}
