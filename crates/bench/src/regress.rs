//! `dapctl bench` — a pinned-suite performance regression harness.
//!
//! Simulator throughput is a feature: a 2× slowdown turns the paper's
//! figure sweeps from minutes into hours. This module pins a small suite
//! of representative cells (architectures × policies that exercise every
//! hot path), times them, and emits a schema-versioned `BENCH_<label>.json`
//! report that a later run can be compared against:
//!
//! ```text
//! dapctl bench --label seed                 # emit target/bench/BENCH_seed.json
//! dapctl bench --compare BENCH_seed.json    # exit 3 if >10% slower
//! dapctl bench --compare b.json --warn-only # print regressions, exit 0
//! ```
//!
//! The report carries wall time, windows/s and accesses/s throughput,
//! per-cell timings, peak RSS (`VmHWM` from `/proc/self/status`), the
//! executor's worker-thread count, and — when the build has telemetry —
//! the cycle-attribution profiler's phase percentiles for the profiled
//! cell, so a performance *and* a latency-attribution drift are both
//! visible in one artifact.
//!
//! Comparisons are wall-clock based and therefore machine-sensitive:
//! compare against a baseline recorded on the same machine class, and
//! treat CI comparisons as advisory (`--warn-only`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dap_telemetry::json::{obj, parse, Json};
use dap_telemetry::Percentiles;
use experiments::runner::{build_policy, PolicyKind};
use mem_sim::{System, SystemConfig};
use workloads::{rate_mode, spec};

/// Name of the bench-report schema.
pub const SCHEMA_NAME: &str = "dap-bench";

/// Version of the bench-report schema. Bump when a field is added,
/// removed, or reinterpreted; [`report_from_json`] rejects mismatches.
pub const SCHEMA_VERSION: u32 = 1;

/// Default regression threshold for `--compare`, in percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Exit status when `--compare` finds a regression (without
/// `--warn-only`). Distinct from usage errors (2) and artifact parse
/// failures (4).
pub const EXIT_REGRESSION: i32 = 3;

/// Baseline cells faster than this are skipped by [`compare`]: at
/// sub-10ms scale, scheduler noise dwarfs any real regression.
const MIN_COMPARABLE_SECONDS: f64 = 0.01;

/// Each cell is simulated this many times and the *minimum* wall time is
/// reported. Scheduler preemption and frequency drift only ever add
/// time, so the minimum over repeats estimates the true cost far more
/// stably than any single run (observed run-to-run spread on a busy
/// single-CPU host: ±20%; min-of-3 spread: a few percent). The simulator
/// is deterministic, so repeats produce identical windows/accesses.
const TIMING_REPEATS: usize = 3;

/// One pinned suite cell: a benchmark clone on one architecture/policy.
struct SuiteCell {
    name: &'static str,
    bench: &'static str,
    policy: PolicyKind,
    arch: &'static str,
    cores: usize,
    /// Attach the full telemetry + cycle-attribution profiler stack and
    /// harvest its phase percentiles into the report.
    profiled: bool,
}

/// The pinned suite. Chosen to cover the hot paths that dominate figure
/// runtime: the sectored cache with and without the DAP controller (the
/// controller's solver + bookkeeping is the paper's core cost), the
/// Alloy direct-mapped path, and the eDRAM tag path. Names are stable
/// identifiers — `--compare` matches cells by name.
const SUITE: &[SuiteCell] = &[
    SuiteCell {
        name: "mcf-r8-sectored-dap",
        bench: "mcf",
        policy: PolicyKind::Dap,
        arch: "sectored",
        cores: 8,
        profiled: true,
    },
    SuiteCell {
        name: "mcf-r8-sectored-base",
        bench: "mcf",
        policy: PolicyKind::Baseline,
        arch: "sectored",
        cores: 8,
        profiled: false,
    },
    SuiteCell {
        name: "libquantum-r8-alloy-dap",
        bench: "libquantum",
        policy: PolicyKind::Dap,
        arch: "alloy",
        cores: 8,
        profiled: false,
    },
    // omnetpp at rate-8 keeps the eDRAM read/write-path split busy for
    // tens of milliseconds per run; the milc-r4 cell it replaced finished
    // in ~2ms, under `MIN_COMPARABLE_SECONDS`, so `--compare` silently
    // skipped it and the eDRAM path had no enforced regression coverage.
    SuiteCell {
        name: "omnetpp-r8-edram-dap",
        bench: "omnetpp",
        policy: PolicyKind::Dap,
        arch: "edram",
        cores: 8,
        profiled: false,
    },
];

/// Timing of one suite cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Stable cell identifier (suite name; `--compare` matches on it).
    pub name: String,
    /// Wall-clock seconds the simulation took.
    pub seconds: f64,
    /// DAP windows simulated (slowest core's cycles / 64).
    pub windows: u64,
    /// Demand accesses (reads + writes) the subsystem served.
    pub accesses: u64,
}

/// Phase percentiles harvested from the profiled cell's histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePercentiles {
    /// Histogram name (e.g. `prof.cache_queue_wait`).
    pub phase: String,
    /// Samples in the histogram.
    pub count: u64,
    /// p50/p90/p99/p999, as bucket upper bounds.
    pub percentiles: Percentiles,
}

/// A full bench report — everything `BENCH_<label>.json` carries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Human-chosen run label (`BENCH_<label>.json`).
    pub label: String,
    /// Per-core instruction budget every cell ran.
    pub instructions: u64,
    /// Worker threads the experiment executor would use (informational —
    /// the suite itself runs cells sequentially for stable timings).
    pub threads: usize,
    /// Total wall-clock seconds across all cells.
    pub wall_seconds: f64,
    /// Aggregate DAP windows per second across the suite.
    pub windows_per_sec: f64,
    /// Aggregate demand accesses per second across the suite.
    pub accesses_per_sec: f64,
    /// Peak resident set size in kB (`VmHWM`), 0 when unavailable.
    pub peak_rss_kb: u64,
    /// Per-cell timings, in suite order.
    pub cells: Vec<CellTiming>,
    /// Profiler phase percentiles from the profiled cell (empty when the
    /// build is `telemetry-off`).
    pub profile: Vec<PhasePercentiles>,
}

fn config_for(arch: &str, cores: usize) -> SystemConfig {
    match arch {
        "alloy" => SystemConfig::alloy_cache(cores),
        "edram" => SystemConfig::edram_cache(cores, 256),
        _ => SystemConfig::sectored_dram_cache(cores),
    }
}

/// Decisions the `dapd-decisions` cell makes per instruction of the
/// per-core budget (150k instructions → 600k decisions: enough to clear
/// [`MIN_COMPARABLE_SECONDS`] on a laptop-class core while staying a
/// small fraction of the suite's wall time).
const DAPD_DECISIONS_PER_INSTRUCTION: u64 = 4;

/// Times the `dapd` decision engine in-process: a route + served-report
/// round per request over an mcf-shaped request stream, re-solving Eq. 4
/// from the measured rates every 64 decisions. In the resulting
/// [`CellTiming`], `accesses` counts *decisions* (so the report's
/// accesses/s column reads as decisions/s for this cell) and `windows`
/// counts re-solves.
pub fn run_dapd_cell(decisions: u64) -> CellTiming {
    let spec = spec("mcf").unwrap_or_else(|| unreachable!("mcf is in the workload table"));
    let mut seconds = f64::INFINITY;
    let mut windows = 0u64;
    for _ in 0..TIMING_REPEATS {
        let mut engine = dapd::Engine::new(dapd::EngineConfig::hbm_ddr4_pair())
            .unwrap_or_else(|e| unreachable!("stock dapd config is valid: {e}"));
        let tenants = engine.config().tenants.len() as u16;
        let rates: Vec<f64> = engine
            .config()
            .backends
            .iter()
            .map(|b| b.nominal_gbps)
            .collect();
        let mut stream = workloads::RequestStream::from_spec(spec, tenants, 0xBE9C_0001);
        // Sub-nanosecond service times carry fractionally between
        // reports so windowed busy time integrates to the true rate.
        let mut carry_ns = vec![0.0f64; rates.len()];
        let start = Instant::now();
        for _ in 0..decisions {
            let r = stream.next_request();
            let d = engine
                .route(r.tenant, r.bytes)
                .unwrap_or_else(|e| unreachable!("stream tenants match the engine: {e}"));
            // Close the loop: the chosen backend "serves" at nominal
            // rate, so the measured-bandwidth re-solve path runs every
            // window exactly as it would against live reports.
            carry_ns[d.backend] += f64::from(r.bytes) / rates[d.backend];
            let nanos = carry_ns[d.backend] as u32;
            carry_ns[d.backend] -= f64::from(nanos);
            let _ = engine.report_served(d.backend as u8, r.bytes, nanos);
        }
        seconds = seconds.min(start.elapsed().as_secs_f64());
        windows = u64::from(engine.window_seq());
    }
    CellTiming {
        name: "dapd-decisions".to_string(),
        seconds,
        windows,
        accesses: decisions,
    }
}

/// Runs the pinned suite at `instructions` per core and assembles the
/// report. Cells run sequentially so their timings don't contend; each
/// cell is timed [`TIMING_REPEATS`] times and the minimum is reported.
pub fn run_suite(label: &str, instructions: u64) -> BenchReport {
    let mut cells = Vec::with_capacity(SUITE.len());
    let mut profile = Vec::new();
    let mut total_seconds = 0.0f64;
    let mut total_windows = 0u64;
    let mut total_accesses = 0u64;
    for cell in SUITE {
        let spec = spec(cell.bench).unwrap_or_else(|| {
            unreachable!(
                "suite names a benchmark the workload table lacks: {}",
                cell.bench
            )
        });
        let profiled = cell.profiled && dap_telemetry::enabled();
        let mut seconds = f64::INFINITY;
        let mut windows = 0u64;
        let mut accesses = 0u64;
        for repeat in 0..TIMING_REPEATS {
            let config = config_for(cell.arch, cell.cores);
            let policy = build_policy(cell.policy, &config).unwrap_or_else(|e| {
                unreachable!(
                    "suite cell {} has an invalid policy/config pair: {e}",
                    cell.name
                )
            });
            let mut sys = System::with_policy(config, rate_mode(spec, cell.cores), policy);
            // A fresh registry per repeat so the harvested histograms
            // cover exactly one run; every repeat of a profiled cell
            // carries the full telemetry stack so the timed work is
            // identical across repeats.
            let registry = dap_telemetry::MetricsRegistry::new();
            if profiled {
                sys.attach_telemetry(mem_sim::SubsystemTelemetry::new(&registry));
                if let Some(profiler) = mem_sim::AccessProfiler::new(64, 64) {
                    sys.attach_profiler(profiler);
                }
            }
            let start = Instant::now();
            let r = sys.run(instructions);
            seconds = seconds.min(start.elapsed().as_secs_f64());
            // Deterministic simulator: identical on every repeat.
            windows = r.per_core.iter().map(|c| c.cycles).max().unwrap_or(0) / 64;
            accesses = r.stats.demand_reads + r.stats.demand_writes;
            if profiled && repeat == TIMING_REPEATS - 1 {
                let snapshot = registry.snapshot();
                for (name, hist) in &snapshot.histograms {
                    if !name.starts_with("prof.") {
                        continue;
                    }
                    if let Some(percentiles) = hist.percentiles() {
                        profile.push(PhasePercentiles {
                            phase: name.clone(),
                            count: hist.count,
                            percentiles,
                        });
                    }
                }
            }
        }
        total_seconds += seconds;
        total_windows += windows;
        total_accesses += accesses;
        cells.push(CellTiming {
            name: cell.name.to_string(),
            seconds,
            windows,
            accesses,
        });
    }
    // The daemon's decision engine rides along as a fifth cell so a
    // slowdown on the `dapd` hot path (route + ledger + re-solve) is
    // caught by the same `--compare` gate as the simulator cells.
    let dapd_cell = run_dapd_cell(instructions * DAPD_DECISIONS_PER_INSTRUCTION);
    total_seconds += dapd_cell.seconds;
    total_windows += dapd_cell.windows;
    total_accesses += dapd_cell.accesses;
    cells.push(dapd_cell);
    let secs = total_seconds.max(1e-9);
    BenchReport {
        label: label.to_string(),
        instructions,
        threads: experiments::ParallelExecutor::from_env().threads(),
        wall_seconds: total_seconds,
        windows_per_sec: total_windows as f64 / secs,
        accesses_per_sec: total_accesses as f64 / secs,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        cells,
        profile,
    }
}

/// Peak resident set size in kB, from `VmHWM` in `/proc/self/status`
/// (`None` off Linux or if procfs is unavailable).
pub fn peak_rss_kb() -> Option<u64> {
    parse_vm_hwm_kb(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Extracts the `VmHWM` value (kB) from `/proc/self/status` text.
pub fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

fn cell_json(cell: &CellTiming) -> Json {
    obj([
        ("name", Json::Str(cell.name.clone())),
        ("seconds", Json::Num(cell.seconds)),
        ("windows", Json::Num(cell.windows as f64)),
        ("accesses", Json::Num(cell.accesses as f64)),
    ])
}

fn phase_json(phase: &PhasePercentiles) -> Json {
    obj([
        ("phase", Json::Str(phase.phase.clone())),
        ("count", Json::Num(phase.count as f64)),
        ("p50", Json::Num(phase.percentiles.p50 as f64)),
        ("p90", Json::Num(phase.percentiles.p90 as f64)),
        ("p99", Json::Num(phase.percentiles.p99 as f64)),
        ("p999", Json::Num(phase.percentiles.p999 as f64)),
    ])
}

/// Serializes a report to the schema-versioned JSON document.
pub fn report_to_json(report: &BenchReport) -> String {
    obj([
        ("schema", Json::Str(SCHEMA_NAME.to_string())),
        ("version", Json::Num(f64::from(SCHEMA_VERSION))),
        ("label", Json::Str(report.label.clone())),
        ("instructions", Json::Num(report.instructions as f64)),
        ("threads", Json::Num(report.threads as f64)),
        ("wall_seconds", Json::Num(report.wall_seconds)),
        ("windows_per_sec", Json::Num(report.windows_per_sec)),
        ("accesses_per_sec", Json::Num(report.accesses_per_sec)),
        ("peak_rss_kb", Json::Num(report.peak_rss_kb as f64)),
        (
            "cells",
            Json::Arr(report.cells.iter().map(cell_json).collect()),
        ),
        (
            "profile",
            Json::Arr(report.profile.iter().map(phase_json).collect()),
        ),
    ])
    .to_string_compact()
}

fn need_num(value: &Json, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn need_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn need_str(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Parses a report back from its JSON document, validating the schema
/// name and version.
///
/// # Errors
///
/// Returns a description of the first schema or field problem.
pub fn report_from_json(text: &str) -> Result<BenchReport, String> {
    let value = parse(text)?;
    if value.get("schema").and_then(Json::as_str) != Some(SCHEMA_NAME) {
        return Err(format!("not a {SCHEMA_NAME} report"));
    }
    let version = value.get("version").and_then(Json::as_u64);
    if version != Some(u64::from(SCHEMA_VERSION)) {
        return Err(format!(
            "unsupported schema version {version:?}, expected {SCHEMA_VERSION}"
        ));
    }
    let cells = value
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing array field `cells`")?
        .iter()
        .map(|c| {
            Ok(CellTiming {
                name: need_str(c, "name")?,
                seconds: need_num(c, "seconds")?,
                windows: need_u64(c, "windows")?,
                accesses: need_u64(c, "accesses")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let profile = value
        .get("profile")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|p| {
            Ok(PhasePercentiles {
                phase: need_str(p, "phase")?,
                count: need_u64(p, "count")?,
                percentiles: Percentiles {
                    p50: need_u64(p, "p50")?,
                    p90: need_u64(p, "p90")?,
                    p99: need_u64(p, "p99")?,
                    p999: need_u64(p, "p999")?,
                },
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchReport {
        label: need_str(&value, "label")?,
        instructions: need_u64(&value, "instructions")?,
        threads: need_u64(&value, "threads")? as usize,
        wall_seconds: need_num(&value, "wall_seconds")?,
        windows_per_sec: need_num(&value, "windows_per_sec")?,
        accesses_per_sec: need_num(&value, "accesses_per_sec")?,
        peak_rss_kb: need_u64(&value, "peak_rss_kb")?,
        cells,
        profile,
    })
}

/// Writes `BENCH_<label>.json` under `dir`, returning the path.
///
/// # Errors
///
/// Returns a message naming the path on I/O failure.
pub fn write_report(dir: &Path, report: &BenchReport) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("failed to create directory `{}`: {e}", dir.display()))?;
    let path = dir.join(format!("BENCH_{}.json", report.label));
    let mut text = report_to_json(report);
    text.push('\n');
    std::fs::write(&path, text)
        .map_err(|e| format!("failed to write `{}`: {e}", path.display()))?;
    Ok(path)
}

/// Compares `current` against `baseline` and returns one line per
/// regression beyond `threshold_pct` percent: aggregate windows/s
/// throughput drop, per-cell wall-time growth (cells matched by name;
/// baseline cells missing from the current run are regressions too).
/// Baseline cells under 10ms are skipped — at that scale scheduler noise
/// dominates. Empty vector means no regressions.
pub fn compare(current: &BenchReport, baseline: &BenchReport, threshold_pct: f64) -> Vec<String> {
    let t = threshold_pct / 100.0;
    let mut regressions = Vec::new();
    // Wall-clock comparisons across different per-core budgets are
    // meaningless (every cell's runtime scales with the budget), so a
    // mismatch is itself a finding — `dapctl bench --compare` avoids it
    // by defaulting to the baseline's recorded budget.
    if current.instructions != baseline.instructions {
        regressions.push(format!(
            "instruction budgets differ: current {} vs baseline {} — timings are not comparable \
             (rerun with --instructions {})",
            current.instructions, baseline.instructions, baseline.instructions
        ));
        return regressions;
    }
    if baseline.windows_per_sec > 0.0
        && current.windows_per_sec < baseline.windows_per_sec * (1.0 - t)
    {
        regressions.push(format!(
            "aggregate throughput fell {:.1}%: {:.0} -> {:.0} windows/s",
            100.0 * (1.0 - current.windows_per_sec / baseline.windows_per_sec),
            baseline.windows_per_sec,
            current.windows_per_sec
        ));
    }
    for base in &baseline.cells {
        if base.seconds < MIN_COMPARABLE_SECONDS {
            continue;
        }
        let Some(cur) = current.cells.iter().find(|c| c.name == base.name) else {
            regressions.push(format!("cell {} missing from the current run", base.name));
            continue;
        };
        if cur.seconds > base.seconds * (1.0 + t) {
            regressions.push(format!(
                "cell {} slowed {:.1}%: {:.3}s -> {:.3}s",
                base.name,
                100.0 * (cur.seconds / base.seconds - 1.0),
                base.seconds,
                cur.seconds
            ));
        }
    }
    regressions
}

/// Renders the report as a short human table (printed after a run).
pub fn render_report(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench {} @ {} instructions/core: {:.2}s wall, {:.0} windows/s, {:.0} accesses/s, peak RSS {} kB",
        report.label,
        report.instructions,
        report.wall_seconds,
        report.windows_per_sec,
        report.accesses_per_sec,
        report.peak_rss_kb
    );
    for cell in &report.cells {
        let _ = writeln!(
            out,
            "  {:<28} {:>8.3}s  {:>9} windows  {:>9} accesses",
            cell.name, cell.seconds, cell.windows, cell.accesses
        );
    }
    if !report.profile.is_empty() {
        let _ = writeln!(
            out,
            "  {:<28} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "profiled phase", "count", "p50", "p90", "p99", "p999"
        );
        for phase in &report.profile {
            let p = &phase.percentiles;
            let _ = writeln!(
                out,
                "  {:<28} {:>9} {:>8} {:>8} {:>8} {:>8}",
                phase.phase, phase.count, p.p50, p.p90, p.p99, p.p999
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            label: "seed".to_string(),
            instructions: 100_000,
            threads: 8,
            wall_seconds: 2.5,
            windows_per_sec: 40_000.0,
            accesses_per_sec: 250_000.0,
            peak_rss_kb: 18_432,
            cells: vec![
                CellTiming {
                    name: "mcf-r8-sectored-dap".to_string(),
                    seconds: 1.5,
                    windows: 60_000,
                    accesses: 400_000,
                },
                CellTiming {
                    name: "mcf-r8-sectored-base".to_string(),
                    seconds: 1.0,
                    windows: 40_000,
                    accesses: 225_000,
                },
            ],
            profile: vec![PhasePercentiles {
                phase: "prof.cache_queue_wait".to_string(),
                count: 6_000,
                percentiles: Percentiles {
                    p50: 16,
                    p90: 64,
                    p99: 256,
                    p999: 512,
                },
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report_to_json(&report);
        assert!(text.contains("\"schema\":\"dap-bench\""), "{text}");
        assert!(text.contains("\"version\":1"), "{text}");
        let back = report_from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn wrong_schema_or_version_is_rejected() {
        let mut report = sample_report();
        report.label = "x".to_string();
        let good = report_to_json(&report);
        let wrong_name = good.replace("dap-bench", "not-a-bench");
        assert!(report_from_json(&wrong_name).is_err());
        let wrong_version = good.replace("\"version\":1", "\"version\":99");
        let err = report_from_json(&wrong_version).unwrap_err();
        assert!(err.contains("99"), "{err}");
        assert!(report_from_json("{}").is_err());
    }

    #[test]
    fn compare_flags_slowdowns_and_missing_cells() {
        let baseline = sample_report();
        // Identical run: clean.
        assert!(compare(&baseline, &baseline, 10.0).is_empty());
        // 5% slower on one cell: within a 10% threshold.
        let mut slight = baseline.clone();
        slight.cells[0].seconds *= 1.05;
        assert!(compare(&slight, &baseline, 10.0).is_empty());
        // 50% slower cell and collapsed throughput: two regressions.
        let mut bad = baseline.clone();
        bad.cells[0].seconds *= 1.5;
        bad.windows_per_sec = 10_000.0;
        let regressions = compare(&bad, &baseline, 10.0);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
        assert!(regressions
            .iter()
            .any(|r| r.contains("mcf-r8-sectored-dap")));
        assert!(regressions.iter().any(|r| r.contains("throughput")));
        // A baseline cell the current run lacks is itself a regression.
        let mut missing = baseline.clone();
        missing.cells.pop();
        let regressions = compare(&missing, &baseline, 10.0);
        assert!(
            regressions.iter().any(|r| r.contains("missing")),
            "{regressions:?}"
        );
    }

    #[test]
    fn mismatched_budgets_are_incomparable() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.instructions = baseline.instructions * 2;
        // Twice the budget makes every cell "slower"; the only finding
        // must be the budget mismatch, not bogus per-cell regressions.
        for cell in &mut current.cells {
            cell.seconds *= 2.0;
        }
        let regressions = compare(&current, &baseline, 10.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("budgets differ"), "{regressions:?}");
    }

    #[test]
    fn sub_noise_cells_are_not_compared() {
        let mut baseline = sample_report();
        baseline.cells[0].seconds = 0.001;
        let mut current = baseline.clone();
        current.cells[0].seconds = 0.009; // 9x "slower", but micro-noise
        current.windows_per_sec = baseline.windows_per_sec;
        assert!(compare(&current, &baseline, 10.0).is_empty());
    }

    #[test]
    fn vm_hwm_parses_from_status_text() {
        let status = "Name:\tdapctl\nVmPeak:\t  123 kB\nVmHWM:\t   18432 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(18_432));
        assert_eq!(parse_vm_hwm_kb("Name:\tx\n"), None);
        // The live probe works on Linux; elsewhere it degrades to None.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().unwrap() > 0);
        }
    }

    #[test]
    fn suite_runs_at_a_tiny_budget_and_renders() {
        let report = run_suite("unit", 2_000);
        assert_eq!(report.cells.len(), SUITE.len() + 1);
        let dapd_cell = report.cells.last().unwrap();
        assert_eq!(dapd_cell.name, "dapd-decisions");
        assert_eq!(
            dapd_cell.accesses,
            2_000 * DAPD_DECISIONS_PER_INSTRUCTION,
            "accesses column counts decisions for the dapd cell"
        );
        assert!(report.cells.iter().all(|c| c.windows > 0));
        assert!(report.cells.iter().all(|c| c.accesses > 0));
        if dap_telemetry::enabled() {
            assert!(
                report
                    .profile
                    .iter()
                    .any(|p| p.phase == "prof.cache_queue_wait"),
                "profiled cell must harvest phase percentiles: {:?}",
                report.profile
            );
        }
        let table = render_report(&report);
        assert!(table.contains("mcf-r8-sectored-dap"), "{table}");
        let back = report_from_json(&report_to_json(&report)).unwrap();
        assert_eq!(back.cells.len(), report.cells.len());
    }
}
