//! Shared command-line handling for the dap-bench binaries.
//!
//! Every figure/table binary accepts `--threads N` (also `--threads=N`)
//! to set the experiment executor's worker count, taking precedence over
//! the `DAP_THREADS` environment variable; with neither, the executor
//! uses all available cores. `--audit[=MODE]` forces the checked-mode
//! invariant auditor (`strict` when bare; also `observe` / `off`),
//! taking precedence over `DAP_AUDIT`. Invalid values (zero,
//! non-numeric) are usage errors: the binary prints a diagnostic and
//! exits with status 2.
//!
//! [`run_figure`] wraps a figure binary's body with the graceful-
//! shutdown contract: the Ctrl-C handler is installed, the main thread
//! honors the global cancel token at window granularity, and an
//! interrupted run exits with
//! [`EXIT_INTERRUPTED`](experiments::EXIT_INTERRUPTED) (130) after its
//! checkpoint manifest and telemetry artifacts have been flushed, so a
//! `DAP_RESUME` re-run completes the figure bit-identically.

use experiments::exec::set_thread_override;
use experiments::{global_cancel_token, EXIT_INTERRUPTED};

/// Parses a `--threads` value. Zero is rejected — a zero-worker executor
/// cannot make progress, and silently clamping would hide the typo.
///
/// # Errors
///
/// A human-readable diagnostic when the value is not a positive integer.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err("--threads must be at least 1".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--threads expects a positive integer, got `{raw}`")),
    }
}

/// Parses and installs a `--threads` value, exiting with status 2 (usage
/// error) when it is missing or invalid.
pub fn apply_threads(binary: &str, value: Option<&str>) -> usize {
    let Some(raw) = value else {
        eprintln!("{binary}: --threads needs a value");
        std::process::exit(2);
    };
    match parse_thread_count(raw) {
        Ok(n) => {
            set_thread_override(n);
            n
        }
        Err(message) => {
            eprintln!("{binary}: {message}");
            std::process::exit(2);
        }
    }
}

/// Installs an `--audit` value as the process-wide audit-mode override
/// (bare `--audit` means strict).
fn apply_audit(value: Option<&str>) {
    let mode = match value {
        None => dap_core::AuditMode::Strict,
        Some(v) => dap_core::audit::parse_mode(v),
    };
    dap_core::audit::set_mode_override(Some(mode));
}

/// Argument handling for the figure/table binaries, which take no
/// positional arguments: accepts `--threads N` / `--threads=N` and
/// `--audit` / `--audit=MODE`, and rejects anything else with a usage
/// error (exit status 2).
pub fn parse_figure_args(binary: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            apply_threads(binary, it.next().map(String::as_str));
        } else if let Some(v) = a.strip_prefix("--threads=") {
            apply_threads(binary, Some(v));
        } else if a == "--audit" {
            apply_audit(None);
        } else if let Some(v) = a.strip_prefix("--audit=") {
            apply_audit(Some(v));
        } else {
            eprintln!(
                "{binary}: unknown argument `{a}`\n\
                 usage: {binary} [--threads N] [--audit[=strict|observe|off]]   \
                 (env: DAP_THREADS, DAP_INSTRUCTIONS, DAP_AUDIT, DAP_CELL_DEADLINE_MS, \
                 DAP_TELEMETRY, DAP_TELEMETRY_DIR)"
            );
            std::process::exit(2);
        }
    }
}

/// Runs a figure/table binary's body under the shared CLI contract:
/// parses the figure arguments, installs the Ctrl-C handler, arms the
/// global cancel token on the main thread (single-threaded grids run
/// inline there), and maps the outcome onto the documented exit codes —
/// 0 on success, [`EXIT_INTERRUPTED`] (130) when the run was cancelled
/// (checkpoints and telemetry already flushed; re-run with `DAP_RESUME`
/// to continue), and the default panic exit for genuine crashes.
pub fn run_figure(binary: &str, body: impl FnOnce()) -> ! {
    parse_figure_args(binary);
    run_interruptible(binary, body)
}

/// [`run_figure`]'s graceful-shutdown contract without the figure
/// argument parsing, for binaries with their own CLI grammar (`dapctl`).
pub fn run_interruptible(binary: &str, body: impl FnOnce()) -> ! {
    crate::sigint::install();
    let token = global_cancel_token();
    // Cooperative interruptions unwind with a typed payload; keep the
    // default panic hook's backtrace noise for genuine bugs only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info
            .payload()
            .downcast_ref::<mem_sim::RunInterrupted>()
            .is_none()
        {
            default_hook(info);
        }
    }));
    let armed = mem_sim::ScopedStop::install(&[(token.flag(), mem_sim::StopCause::Cancelled)]);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    drop(armed);
    if token.is_cancelled() {
        eprintln!(
            "{binary}: interrupted; finished cells are checkpointed — \
             re-run with DAP_RESUME=<manifest> to continue"
        );
        std::process::exit(EXIT_INTERRUPTED);
    }
    match outcome {
        Ok(()) => std::process::exit(0),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_counts() {
        assert_eq!(parse_thread_count("1"), Ok(1));
        assert_eq!(parse_thread_count("64"), Ok(64));
    }

    #[test]
    fn rejects_zero_and_garbage() {
        assert!(parse_thread_count("0").is_err());
        assert!(parse_thread_count("four").is_err());
        assert!(parse_thread_count("-2").is_err());
        assert!(parse_thread_count("").is_err());
        assert!(parse_thread_count("3.5").is_err());
    }
}
