//! Shared command-line handling for the dap-bench binaries.
//!
//! Every figure/table binary accepts `--threads N` (also `--threads=N`)
//! to set the experiment executor's worker count, taking precedence over
//! the `DAP_THREADS` environment variable; with neither, the executor
//! uses all available cores. Invalid values (zero, non-numeric) are
//! usage errors: the binary prints a diagnostic and exits with status 2.

use experiments::exec::set_thread_override;

/// Parses a `--threads` value. Zero is rejected — a zero-worker executor
/// cannot make progress, and silently clamping would hide the typo.
///
/// # Errors
///
/// A human-readable diagnostic when the value is not a positive integer.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(0) => Err("--threads must be at least 1".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--threads expects a positive integer, got `{raw}`")),
    }
}

/// Parses and installs a `--threads` value, exiting with status 2 (usage
/// error) when it is missing or invalid.
pub fn apply_threads(binary: &str, value: Option<&str>) -> usize {
    let Some(raw) = value else {
        eprintln!("{binary}: --threads needs a value");
        std::process::exit(2);
    };
    match parse_thread_count(raw) {
        Ok(n) => {
            set_thread_override(n);
            n
        }
        Err(message) => {
            eprintln!("{binary}: {message}");
            std::process::exit(2);
        }
    }
}

/// Argument handling for the figure/table binaries, which take no
/// positional arguments: accepts `--threads N` / `--threads=N` and
/// rejects anything else with a usage error (exit status 2).
pub fn parse_figure_args(binary: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            apply_threads(binary, it.next().map(String::as_str));
        } else if let Some(v) = a.strip_prefix("--threads=") {
            apply_threads(binary, Some(v));
        } else {
            eprintln!(
                "{binary}: unknown argument `{a}`\n\
                 usage: {binary} [--threads N]   (env: DAP_THREADS, DAP_INSTRUCTIONS, \
                 DAP_TELEMETRY, DAP_TELEMETRY_DIR)"
            );
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_counts() {
        assert_eq!(parse_thread_count("1"), Ok(1));
        assert_eq!(parse_thread_count("64"), Ok(64));
    }

    #[test]
    fn rejects_zero_and_garbage() {
        assert!(parse_thread_count("0").is_err());
        assert!(parse_thread_count("four").is_err());
        assert!(parse_thread_count("-2").is_err());
        assert!(parse_thread_count("").is_err());
        assert!(parse_thread_count("3.5").is_err());
    }
}
