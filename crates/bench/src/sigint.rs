//! Ctrl-C handling for the CLI binaries.
//!
//! [`install`] registers a SIGINT handler that trips the experiment
//! harness's [`global_cancel_token`](experiments::global_cancel_token).
//! Nothing else happens in signal context — the handler performs one
//! atomic store (async-signal-safe) and returns; in-flight simulations
//! notice the tripped token at their next window boundary, the executor
//! stops starting new cells, checkpointed progress stays on disk, and
//! the binary exits with [`EXIT_INTERRUPTED`](experiments::cancel) so a
//! wrapper can tell "interrupted, resume later" from "failed".
//!
//! A second Ctrl-C aborts outright: if the first one is taking too long
//! to drain (or the process is wedged before a window boundary), the
//! user still has a way out.
//!
//! [`install_usr1`]/[`take_usr1`] give `dapctl serve` a SIGUSR1-driven
//! flight-ring dump on the same machinery: the handler does one atomic
//! store, and the serving loop drains the flag.
//!
//! This is the one module in the repository that needs `unsafe` — the
//! standard library has no signal API, so the handler is registered
//! through the C `signal(2)` entry point directly (no new dependencies).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGUSR1 handler; drained by [`take_usr1`].
static USR1_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod ffi {
    use std::sync::atomic::Ordering;

    /// C `SIGINT` (POSIX-mandated value 2 on every Unix).
    pub const SIGINT: i32 = 2;

    /// C `SIGUSR1`: 10 on Linux, 30 on the BSD family (incl. macOS).
    #[cfg(target_os = "linux")]
    pub const SIGUSR1: i32 = 10;
    #[cfg(not(target_os = "linux"))]
    pub const SIGUSR1: i32 = 30;

    extern "C" {
        /// C `signal(2)`. The handler is passed (and the previous
        /// disposition returned) as a pointer-sized integer so the
        /// declaration stays free of function-pointer-in-FFI casts.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The SIGINT handler: trip the global cancel token; abort on a
    /// repeated Ctrl-C. Only atomic operations — async-signal-safe.
    pub extern "C" fn on_sigint(_signum: i32) {
        let token = experiments::global_cancel_token();
        if token.is_cancelled() {
            // invariant: abort() is async-signal-safe (raises SIGABRT);
            // a second Ctrl-C means "stop now", not "drain gracefully".
            std::process::abort();
        }
        token.cancel();
    }

    /// The SIGUSR1 handler: one atomic store (async-signal-safe); the
    /// serving loop drains the flag and dumps the flight ring.
    pub extern "C" fn on_sigusr1(_signum: i32) {
        super::USR1_PENDING.store(true, Ordering::SeqCst);
    }
}

/// Registers the Ctrl-C handler (idempotent). Call before starting any
/// grid; the first Ctrl-C then cancels cooperatively instead of killing
/// the process mid-write.
pub fn install() {
    // Initialize the token eagerly so the signal handler's lookup is a
    // plain atomic load, never a first-use allocation.
    let _ = experiments::global_cancel_token();
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    #[cfg(unix)]
    #[allow(unsafe_code)]
    // SAFETY: `signal` is the C standard registration call; the handler
    // is `extern "C"`, performs only async-signal-safe operations, and
    // both arguments are valid for the process's lifetime.
    unsafe {
        let handler: extern "C" fn(i32) = ffi::on_sigint;
        ffi::signal(ffi::SIGINT, handler as usize);
    }
}

/// Registers the SIGUSR1 handler (idempotent). `dapctl serve` polls
/// [`take_usr1`] in its wait loop and dumps the flight ring when it
/// fires, so an operator can snapshot a live daemon's recent decisions
/// with `kill -USR1 <pid>` — no scrape endpoint required.
pub fn install_usr1() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    #[cfg(unix)]
    #[allow(unsafe_code)]
    // SAFETY: same contract as `install` — C registration call, an
    // `extern "C"` handler doing one atomic store, arguments valid for
    // the process's lifetime.
    unsafe {
        let handler: extern "C" fn(i32) = ffi::on_sigusr1;
        ffi::signal(ffi::SIGUSR1, handler as usize);
    }
}

/// Returns `true` once per SIGUSR1 received since the last call
/// (consumes the pending flag).
pub fn take_usr1() -> bool {
    USR1_PENDING.swap(false, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_is_idempotent() {
        super::install();
        super::install();
        assert!(!experiments::global_cancel_token().is_cancelled());
    }

    #[test]
    fn usr1_flag_is_drain_once() {
        super::install_usr1();
        assert!(!super::take_usr1(), "pending before any signal");
        super::USR1_PENDING.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(super::take_usr1(), "first drain sees the flag");
        assert!(!super::take_usr1(), "second drain is empty");
    }
}
