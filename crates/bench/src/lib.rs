//! # dap-bench — the benchmark harness
//!
//! One binary per paper figure/table (`cargo run --release -p dap-bench
//! --bin fig06_dap_sectored`), plus dependency-free microbenchmarks for
//! the hot structures (`cargo bench`) built on [`timing::Harness`].
//!
//! Every binary accepts the `DAP_INSTRUCTIONS` environment variable to
//! override the per-core instruction budget; larger budgets reduce warmup
//! bias at proportional runtime. Figure binaries also accept
//! `--threads N` (see [`cli`]) and emit machine-readable window-trace
//! artifacts when `DAP_TELEMETRY=1` (see [`artifacts`]).

// `deny` rather than `forbid`: the `sigint` module registers the Ctrl-C
// handler through C `signal(2)` (std has no signal API) and carries the
// crate's only `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod cli;
pub mod regress;
pub mod sigint;
pub mod timing;

/// Per-core instruction budget: `DAP_INSTRUCTIONS` env var or `default`.
/// A set-but-invalid value is a usage error: the process prints a
/// diagnostic and exits with status 2 (matching the CLI flag contract)
/// instead of panicking.
pub fn instructions(default: u64) -> u64 {
    match std::env::var("DAP_INSTRUCTIONS") {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("DAP_INSTRUCTIONS must be a positive integer, got {s:?}");
                std::process::exit(2);
            }
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_when_unset() {
        std::env::remove_var("DAP_INSTRUCTIONS");
        assert_eq!(super::instructions(123), 123);
    }
}
