//! # dap-bench — the benchmark harness
//!
//! One binary per paper figure/table (`cargo run --release -p dap-bench
//! --bin fig06_dap_sectored`), plus dependency-free microbenchmarks for
//! the hot structures (`cargo bench`) built on [`timing::Harness`].
//!
//! Every binary accepts the `DAP_INSTRUCTIONS` environment variable to
//! override the per-core instruction budget; larger budgets reduce warmup
//! bias at proportional runtime. Figure binaries also accept
//! `--threads N` (see [`cli`]) and emit machine-readable window-trace
//! artifacts when `DAP_TELEMETRY=1` (see [`artifacts`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod cli;
pub mod timing;

/// Per-core instruction budget: `DAP_INSTRUCTIONS` env var or `default`.
///
/// # Panics
///
/// Panics if the variable is set but not a positive integer.
pub fn instructions(default: u64) -> u64 {
    match std::env::var("DAP_INSTRUCTIONS") {
        Ok(s) => s
            .parse()
            .expect("DAP_INSTRUCTIONS must be a positive integer"),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_when_unset() {
        std::env::remove_var("DAP_INSTRUCTIONS");
        assert_eq!(super::instructions(123), 123);
    }
}
