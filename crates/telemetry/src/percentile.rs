//! Percentile estimation over [`Histogram`] bucket counts.
//!
//! The power-of-two histograms record only per-bucket counts, so a
//! percentile is estimated as the *upper bound of the smallest bucket
//! prefix* covering the requested rank — the same conservative estimator
//! [`Histogram::quantile_upper_bound`] uses. Estimates are therefore
//! upper bounds that never under-report a latency, and are exact for
//! values `<= 1` (bucket 0 is exact).
//!
//! Empty histograms have no percentiles: every entry point returns
//! `None` as the defined sentinel instead of panicking or fabricating a
//! zero.
//!
//! [`Histogram`]: crate::metrics::Histogram
//! [`Histogram::quantile_upper_bound`]: crate::metrics::Histogram::quantile_upper_bound

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// The four standard latency percentiles, as bucket upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (50th percentile).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl Percentiles {
    /// The quantiles [`percentiles_from_buckets`] estimates, in order.
    pub const QUANTILES: [f64; 4] = [0.50, 0.90, 0.99, 0.999];
}

/// Smallest bucket upper bound covering at least `q` (clamped to
/// `[0, 1]`) of the samples in `buckets`, or `None` if all buckets are
/// empty (the defined empty-histogram sentinel).
pub fn quantile_from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return Some(bucket_upper_bound(i));
        }
    }
    Some(u64::MAX)
}

/// Estimates p50/p90/p99/p999 from bucket counts, or `None` if the
/// histogram is empty.
pub fn percentiles_from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS]) -> Option<Percentiles> {
    Some(Percentiles {
        p50: quantile_from_buckets(buckets, 0.50)?,
        p90: quantile_from_buckets(buckets, 0.90)?,
        p99: quantile_from_buckets(buckets, 0.99)?,
        p999: quantile_from_buckets(buckets, 0.999)?,
    })
}

impl HistogramSnapshot {
    /// Smallest bucket upper bound covering at least `q` of the samples,
    /// or `None` if the snapshot is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.buckets, q)
    }

    /// The standard percentile set, or `None` if the snapshot is empty.
    pub fn percentiles(&self) -> Option<Percentiles> {
        percentiles_from_buckets(&self.buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bucket_for;

    /// SplitMix64 step — the workspace's standard seeded generator shape
    /// (no registry RNG dependencies).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_histogram_returns_none_sentinel() {
        let buckets = [0u64; HISTOGRAM_BUCKETS];
        assert_eq!(quantile_from_buckets(&buckets, 0.5), None);
        assert_eq!(percentiles_from_buckets(&buckets), None);
        let snap = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets,
        };
        assert_eq!(snap.percentiles(), None);
        assert_eq!(snap.quantile(0.99), None);
    }

    #[test]
    fn bucket_for_edge_cases() {
        // Zero and one share the exact first bucket.
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        // Every power-of-two boundary: 2^k lands in bucket k, 2^k + 1
        // spills into bucket k + 1 (until the overflow bucket).
        for k in 1..30usize {
            let v = 1u64 << k;
            assert_eq!(bucket_for(v), k, "2^{k}");
            assert_eq!(bucket_for(v + 1), k + 1, "2^{k}+1");
            assert!(v <= bucket_upper_bound(bucket_for(v)));
        }
        // Everything above 2^30 saturates into the overflow bucket, whose
        // upper bound is u64::MAX.
        assert_eq!(bucket_for(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_for(1u64 << 40), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 1);
    }

    #[test]
    fn known_distribution_percentiles() {
        // 100 samples of value 1, one sample of 1000: p50/p90 sit in the
        // exact low bucket, p99/p999 must reach the 1000 sample's bucket.
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[bucket_for(1)] = 100;
        buckets[bucket_for(1000)] = 1;
        let p = percentiles_from_buckets(&buckets).unwrap();
        assert_eq!(p.p50, 1);
        assert_eq!(p.p90, 1);
        assert_eq!(p.p999, bucket_upper_bound(bucket_for(1000)));
        assert_eq!(p.p999, 1024);
    }

    #[test]
    fn percentiles_are_monotone_under_seeded_random_fills() {
        // Property: for any bucket distribution, p50 <= p90 <= p99 <= p999,
        // and each percentile is a valid bucket upper bound.
        let mut state = 0xDEAD_BEEF_0BAD_CAFEu64;
        for round in 0..200 {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            let fills = 1 + (splitmix64(&mut state) % 64);
            for _ in 0..fills {
                let value = splitmix64(&mut state) >> (splitmix64(&mut state) % 64);
                buckets[bucket_for(value)] += 1 + splitmix64(&mut state) % 1000;
            }
            let p = percentiles_from_buckets(&buckets)
                .unwrap_or_else(|| panic!("round {round}: non-empty fill produced None"));
            assert!(p.p50 <= p.p90, "round {round}: {p:?}");
            assert!(p.p90 <= p.p99, "round {round}: {p:?}");
            assert!(p.p99 <= p.p999, "round {round}: {p:?}");
            for v in [p.p50, p.p90, p.p99, p.p999] {
                assert_eq!(v, bucket_upper_bound(bucket_for(v)), "round {round}");
            }
        }
    }

    #[test]
    fn quantile_extremes_clamp() {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[bucket_for(7)] = 10;
        // Below 0 and above 1 clamp instead of panicking.
        assert_eq!(quantile_from_buckets(&buckets, -1.0), Some(8));
        assert_eq!(quantile_from_buckets(&buckets, 2.0), Some(8));
    }

    #[test]
    fn matches_live_histogram_quantile() {
        if !crate::enabled() {
            return;
        }
        let hist = crate::metrics::Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            hist.record(v);
        }
        let buckets = hist.bucket_counts();
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                quantile_from_buckets(&buckets, q),
                hist.quantile_upper_bound(q),
                "q={q}"
            );
        }
    }
}
