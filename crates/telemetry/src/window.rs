//! The window-trace recorder: a bounded ring buffer of controller
//! snapshots with optional spill-to-writer.
//!
//! A [`WindowTraceRecorder`] implements `dap_core`'s
//! [`TelemetrySink`](dap_core::TelemetrySink) and captures every
//! [`WindowSnapshot`] the controller emits. Memory stays bounded: once
//! `capacity` windows are held, the oldest record is either written to
//! the spill writer as a JSONL line (when one was supplied) or dropped.
//! Both outcomes are counted so exports can state exactly what the ring
//! retained.

use std::io::{self, Write};
use std::sync::Mutex;

use dap_core::{ProfileWindow, TelemetrySink, WindowSnapshot};

#[cfg(not(feature = "telemetry-off"))]
use crate::export::window_jsonl_line;

/// Default ring capacity — at W=64 cycles per window this retains the
/// last ~4M cycles of controller behaviour in ~25 MB.
pub const DEFAULT_CAPACITY: usize = 65_536;

struct Inner {
    ring: std::collections::VecDeque<WindowSnapshot>,
    capacity: usize,
    spill: Option<Box<dyn Write + Send>>,
    spilled: u64,
    dropped: u64,
    spill_error: Option<io::Error>,
    violations: u64,
    /// Profiler cycle-attribution rollups, bounded by the same capacity
    /// as the snapshot ring (oldest dropped and counted on overflow).
    profile: std::collections::VecDeque<ProfileWindow>,
    profile_dropped: u64,
}

/// Locks the recorder's state, recovering from poisoning: the state is
/// plain counters and copyable snapshots — consistent after any
/// interrupted mutation — so one panicked simulation thread must not
/// cascade a panic into every later telemetry call.
fn lock_unpoisoned(inner: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bounded, thread-safe recorder of per-window controller snapshots.
///
/// Attach one to a `DapController` (via `attach_sink`) or to a policy
/// through the `mem-sim` layer; afterwards [`take`](Self::take) or
/// [`trace`](Self::trace) yields the retained [`WindowTrace`].
pub struct WindowTraceRecorder {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for WindowTraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_unpoisoned(&self.inner);
        f.debug_struct("WindowTraceRecorder")
            .field("recorded", &inner.ring.len())
            .field("capacity", &inner.capacity)
            .field("spilled", &inner.spilled)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Default for WindowTraceRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl WindowTraceRecorder {
    /// Creates a recorder retaining at most `capacity` windows; overflow
    /// records are dropped (and counted).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Self {
            inner: Mutex::new(Inner {
                ring: std::collections::VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                spill: None,
                spilled: 0,
                dropped: 0,
                spill_error: None,
                violations: 0,
                profile: std::collections::VecDeque::new(),
                profile_dropped: 0,
            }),
        }
    }

    /// Creates a recorder that, once `capacity` windows are held, writes
    /// the oldest record to `spill` as one JSONL line instead of dropping
    /// it. Write errors are remembered (see [`spill_error`](Self::spill_error))
    /// and the affected records counted as dropped; recording never panics
    /// from inside the simulation loop.
    pub fn with_spill(capacity: usize, spill: Box<dyn Write + Send>) -> Self {
        let recorder = Self::new(capacity);
        lock_unpoisoned(&recorder.inner).spill = Some(spill);
        recorder
    }

    /// Number of windows currently held in the ring.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).ring.len()
    }

    /// Whether no windows have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first spill-write error encountered, if any.
    pub fn spill_error(&self) -> Option<io::ErrorKind> {
        lock_unpoisoned(&self.inner)
            .spill_error
            .as_ref()
            .map(io::Error::kind)
    }

    /// Checked-mode audit violations reported through this sink so far
    /// (see [`dap_core::audit`]); reset by [`take`](Self::take).
    pub fn violations(&self) -> u64 {
        lock_unpoisoned(&self.inner).violations
    }

    /// Removes and returns everything recorded so far, leaving the
    /// recorder empty (overflow counters and profile rollups are reset
    /// too).
    pub fn take(&self) -> WindowTrace {
        let mut inner = lock_unpoisoned(&self.inner);
        let trace = WindowTrace {
            records: inner.ring.drain(..).collect(),
            spilled: inner.spilled,
            dropped: inner.dropped,
        };
        inner.spilled = 0;
        inner.dropped = 0;
        inner.violations = 0;
        inner.profile.clear();
        inner.profile_dropped = 0;
        trace
    }

    /// Profiler cycle-attribution rollups retained so far, oldest first
    /// (see [`dap_core::ProfileWindow`]); cleared by [`take`](Self::take).
    pub fn profile_windows(&self) -> Vec<ProfileWindow> {
        lock_unpoisoned(&self.inner)
            .profile
            .iter()
            .copied()
            .collect()
    }

    /// Profile rollups lost to the bounded ring's overflow.
    pub fn profile_dropped(&self) -> u64 {
        lock_unpoisoned(&self.inner).profile_dropped
    }

    /// Returns a copy of everything recorded so far without clearing.
    pub fn trace(&self) -> WindowTrace {
        let inner = lock_unpoisoned(&self.inner);
        WindowTrace {
            records: inner.ring.iter().copied().collect(),
            spilled: inner.spilled,
            dropped: inner.dropped,
        }
    }
}

impl TelemetrySink for WindowTraceRecorder {
    fn record_window(&self, snapshot: &WindowSnapshot) {
        #[cfg(feature = "telemetry-off")]
        {
            let _ = snapshot;
        }
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut inner = lock_unpoisoned(&self.inner);
            if inner.ring.len() >= inner.capacity {
                // invariant: new() rejects capacity zero, so a full ring
                // always has a front element to evict.
                let oldest = inner.ring.pop_front().expect("capacity is non-zero");
                let spill_ok = inner.spill_error.is_none();
                let mut new_error = None;
                let wrote = match inner.spill.as_mut() {
                    Some(writer) if spill_ok => {
                        let mut line = window_jsonl_line(&oldest);
                        line.push('\n');
                        match writer.write_all(line.as_bytes()) {
                            Ok(()) => true,
                            Err(e) => {
                                new_error = Some(e);
                                false
                            }
                        }
                    }
                    _ => false,
                };
                if let Some(e) = new_error {
                    inner.spill_error = Some(e);
                }
                if wrote {
                    inner.spilled += 1;
                } else {
                    inner.dropped += 1;
                }
            }
            inner.ring.push_back(*snapshot);
        }
    }

    fn record_violation(&self, violation: &dap_core::AuditViolation) {
        let _ = violation;
        #[cfg(not(feature = "telemetry-off"))]
        {
            lock_unpoisoned(&self.inner).violations += 1;
        }
    }

    fn record_profile_window(&self, window: &ProfileWindow) {
        #[cfg(feature = "telemetry-off")]
        {
            let _ = window;
        }
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut inner = lock_unpoisoned(&self.inner);
            if inner.profile.len() >= inner.capacity {
                inner.profile.pop_front();
                inner.profile_dropped += 1;
            }
            inner.profile.push_back(*window);
        }
    }
}

/// The retained output of a [`WindowTraceRecorder`]: the in-ring records
/// plus counts of what overflowed.
#[derive(Debug, Default, Clone)]
pub struct WindowTrace {
    /// Retained snapshots, oldest first.
    pub records: Vec<WindowSnapshot>,
    /// Overflowed records successfully written to the spill writer.
    pub spilled: u64,
    /// Overflowed records lost (no spill writer, or a spill write failed).
    pub dropped: u64,
}

impl WindowTrace {
    /// Total windows observed, retained or not.
    pub fn windows_observed(&self) -> u64 {
        self.records.len() as u64 + self.spilled + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::{
        telemetry::sectored_fractions, Ratio, SectoredPlan, TechniqueCounts, WindowStats,
    };
    use std::sync::{Arc, Mutex as StdMutex};

    fn snapshot(index: u64) -> WindowSnapshot {
        WindowSnapshot {
            window_index: index,
            end_cycle: (index + 1) * 64,
            stats: WindowStats {
                cache_accesses: 10,
                mm_accesses: 3,
                ..Default::default()
            },
            partitioned: false,
            granted: TechniqueCounts::default(),
            applied: TechniqueCounts::default(),
            fractions: sectored_fractions(
                &WindowStats::default(),
                &SectoredPlan::default(),
                Ratio::new(11, 4),
            ),
        }
    }

    #[test]
    fn records_in_order_up_to_capacity() {
        let recorder = WindowTraceRecorder::new(4);
        for i in 0..3 {
            recorder.record_window(&snapshot(i));
        }
        let trace = recorder.trace();
        if crate::enabled() {
            assert_eq!(trace.records.len(), 3);
            assert_eq!(
                trace
                    .records
                    .iter()
                    .map(|r| r.window_index)
                    .collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
            assert_eq!(trace.windows_observed(), 3);
        } else {
            assert!(trace.records.is_empty());
        }
    }

    #[test]
    fn overflow_without_spill_drops_oldest() {
        let recorder = WindowTraceRecorder::new(2);
        for i in 0..5 {
            recorder.record_window(&snapshot(i));
        }
        let trace = recorder.take();
        if crate::enabled() {
            assert_eq!(
                trace
                    .records
                    .iter()
                    .map(|r| r.window_index)
                    .collect::<Vec<_>>(),
                vec![3, 4]
            );
            assert_eq!(trace.dropped, 3);
            assert_eq!(trace.spilled, 0);
            assert_eq!(trace.windows_observed(), 5);
        }
        // take() resets the counters.
        assert_eq!(recorder.trace().dropped, 0);
    }

    #[test]
    fn overflow_with_spill_writes_jsonl_lines() {
        if !crate::enabled() {
            return;
        }
        #[derive(Clone)]
        struct Shared(Arc<StdMutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = Shared(Arc::new(StdMutex::new(Vec::new())));
        let recorder = WindowTraceRecorder::with_spill(2, Box::new(sink.clone()));
        for i in 0..4 {
            recorder.record_window(&snapshot(i));
        }
        let trace = recorder.trace();
        assert_eq!(trace.spilled, 2);
        assert_eq!(trace.dropped, 0);
        let written = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"window\":0"));
        assert!(lines[1].contains("\"window\":1"));
        assert!(recorder.spill_error().is_none());
    }

    #[test]
    fn spill_errors_degrade_to_drops() {
        if !crate::enabled() {
            return;
        }
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let recorder = WindowTraceRecorder::with_spill(1, Box::new(Failing));
        for i in 0..3 {
            recorder.record_window(&snapshot(i));
        }
        let trace = recorder.trace();
        assert_eq!(trace.spilled, 0);
        assert_eq!(trace.dropped, 2);
        assert_eq!(recorder.spill_error(), Some(io::ErrorKind::BrokenPipe));
    }

    #[test]
    #[should_panic(expected = "ring capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = WindowTraceRecorder::new(0);
    }

    #[test]
    fn profile_windows_are_retained_bounded_and_cleared_by_take() {
        let recorder = WindowTraceRecorder::new(2);
        for i in 0..3u64 {
            recorder.record_profile_window(&ProfileWindow {
                window_index: i,
                samples: 1 + i,
                cache_queue_wait: 10 * i,
                ..Default::default()
            });
        }
        if crate::enabled() {
            let retained = recorder.profile_windows();
            assert_eq!(
                retained.iter().map(|w| w.window_index).collect::<Vec<_>>(),
                vec![1, 2],
                "oldest rollup evicted at capacity"
            );
            assert_eq!(recorder.profile_dropped(), 1);
            let _ = recorder.take();
        }
        assert!(recorder.profile_windows().is_empty());
        assert_eq!(recorder.profile_dropped(), 0);
    }

    #[test]
    fn violations_are_counted_and_reset_by_take() {
        let recorder = WindowTraceRecorder::new(2);
        let violation = dap_core::AuditViolation {
            window_index: 0,
            invariant: dap_core::Invariant::FractionConservation,
            source: "solved",
            expected: 1.0,
            actual: 0.9,
            detail: "test".into(),
        };
        recorder.record_violation(&violation);
        recorder.record_violation(&violation);
        if crate::enabled() {
            assert_eq!(recorder.violations(), 2);
            let _ = recorder.take();
        }
        assert_eq!(recorder.violations(), 0);
    }
}
