//! A minimal hand-rolled HTTP/1.1 ops responder (and matching client).
//!
//! The workspace is hermetic — no hyper, no tokio — but a Prometheus
//! scrape endpoint only needs a tiny, defensive subset of HTTP/1.1:
//! `GET <path>`, one request per connection, `Connection: close`, and
//! exactly three outcomes (200 with a body, 404, 400). [`OpsServer`]
//! implements that subset over std's blocking sockets:
//!
//! - the accept loop is non-blocking with a 10 ms poll (mirroring
//!   `dapd::Server`), so a stalled or malicious client can never park
//!   it — requests are served on short-lived per-connection threads
//!   capped at [`OpsServerConfig::max_connections`], and connections
//!   over the cap are closed unserved;
//! - every connection gets read/write deadlines and a hard request-size
//!   cap, so torn reads and oversized headers resolve to 400 within
//!   [`OpsServerConfig::read_deadline`] instead of leaking threads;
//! - request parsing ([`handle_request`]) is a pure function over the
//!   raw bytes, which is what the seeded fuzz test drives: any byte
//!   soup answers 200/400/404, never a panic, never a hang.
//!
//! Routing is a caller-supplied closure from path to [`OpsResponse`];
//! `dapd` mounts `/metrics`, `/healthz`, `/varz`, and `/debug/flight`
//! on it, and the explore supervisor mounts the fleet equivalents.
//!
//! [`http_get`] is the matching one-shot client, used by `dapctl top`,
//! `dapctl scrape`, and the CI smoke so nothing outside the repo
//! (curl, python) is needed to scrape the plane.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// One response from an [`OpsRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsResponse {
    /// HTTP status code (200, 400, or 404).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl OpsResponse {
    /// A `200 OK` plain-text response.
    pub fn ok_text(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body,
        }
    }

    /// A `200 OK` JSON response.
    pub fn ok_json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
        }
    }

    /// A `400 Bad Request` response.
    pub fn bad_request() -> Self {
        Self {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "bad request\n".to_string(),
        }
    }
}

/// Maps a request path (e.g. `/metrics`) to a response. Return
/// [`OpsResponse::not_found`] for unknown paths.
pub type OpsRouter = Arc<dyn Fn(&str) -> OpsResponse + Send + Sync>;

/// Limits for one ops endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsServerConfig {
    /// Per-connection read/write deadline.
    pub read_deadline: Duration,
    /// Concurrent connection-handler threads; connections beyond the
    /// cap are closed unserved (the scraper retries).
    pub max_connections: usize,
    /// Hard cap on request bytes read (request line + headers).
    pub max_request_bytes: usize,
}

impl Default for OpsServerConfig {
    fn default() -> Self {
        Self {
            read_deadline: Duration::from_secs(2),
            max_connections: 8,
            max_request_bytes: 8 * 1024,
        }
    }
}

/// A bound-but-not-yet-serving ops endpoint.
#[derive(Debug)]
pub struct OpsServer {
    listener: TcpListener,
    config: OpsServerConfig,
}

/// Handle to a running [`OpsServer`].
pub struct OpsHandle {
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with the
    /// default limits.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            config: OpsServerConfig::default(),
        })
    }

    /// Replaces the limits.
    pub fn with_config(mut self, config: OpsServerConfig) -> Self {
        self.config = config;
        self
    }

    /// The bound address (reports the ephemeral port after `:0` binds).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts serving `router` on a background acceptor thread.
    pub fn spawn(self, router: OpsRouter) -> std::io::Result<OpsHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("ops-accept".to_string())
            .spawn(move || accept_loop(self.listener, self.config, router, stop_accept))?;
        Ok(OpsHandle {
            stop,
            acceptor: Some(acceptor),
            addr,
        })
    }
}

impl OpsHandle {
    /// The address the endpoint is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the acceptor to stop after its current poll.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stops the acceptor and waits for it (worker threads are joined by
    /// the acceptor on its way out).
    pub fn join(mut self) {
        self.request_stop();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    config: OpsServerConfig,
    router: OpsRouter,
    stop: Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        workers.retain(|w| !w.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                if workers.len() >= config.max_connections {
                    drop(stream); // over cap: close unserved, scraper retries
                    continue;
                }
                let router = Arc::clone(&router);
                let config = config.clone();
                if let Ok(worker) = std::thread::Builder::new()
                    .name("ops-conn".to_string())
                    .spawn(move || serve_connection(stream, &config, &router))
                {
                    workers.push(worker);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

fn serve_connection(mut stream: TcpStream, config: &OpsServerConfig, router: &OpsRouter) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_deadline));
    let _ = stream.set_write_timeout(Some(config.read_deadline));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    // Read until end of headers, the size cap, the deadline, or EOF —
    // whichever comes first. Every outcome gets a definite answer.
    let complete = loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break true;
        }
        if buf.len() > config.max_request_bytes {
            break false;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break false, // torn: EOF before end of headers
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                break false
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break false,
        }
    };
    let response = if complete {
        handle_request(&buf, router.as_ref())
    } else {
        render_response(&OpsResponse::bad_request())
    };
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}

/// Parses one raw HTTP request and renders the full response bytes.
/// Pure (no I/O), so the fuzz harness can drive it with arbitrary byte
/// soup: the result is always a well-formed 200/400/404 response.
pub fn handle_request(raw: &[u8], router: &dyn Fn(&str) -> OpsResponse) -> Vec<u8> {
    let response = match parse_request_path(raw) {
        Some(path) => router(&path),
        None => OpsResponse::bad_request(),
    };
    render_response(&response)
}

/// Extracts the path from `GET <path> HTTP/1.x` if the request line is
/// well-formed; anything else (other methods, missing version, non-UTF-8,
/// embedded NUL or control bytes, paths not starting with `/`) is `None`.
fn parse_request_path(raw: &[u8]) -> Option<String> {
    let end = raw.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&raw[..end])
        .ok()?
        .trim_end_matches('\r');
    if line.len() > 4096 || line.bytes().any(|b| b.is_ascii_control()) {
        return None;
    }
    let mut parts = line.split(' ');
    let (method, path, version) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() || method != "GET" || !version.starts_with("HTTP/1.") {
        return None;
    }
    if !path.starts_with('/') || path.is_empty() {
        return None;
    }
    // Drop any query string; the ops endpoints take none.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn render_response(response: &OpsResponse) -> Vec<u8> {
    let reason = match response.status {
        200 => "OK",
        404 => "Not Found",
        _ => "Bad Request",
    };
    let mut out = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len()
    )
    .into_bytes();
    out.extend_from_slice(response.body.as_bytes());
    out
}

/// One-shot HTTP GET against an ops endpoint: connects, sends the
/// request, reads to EOF (the server always closes), and returns
/// `(status, body)`.
///
/// # Errors
///
/// Connection and I/O errors, plus `InvalidData` if the response is not
/// parseable HTTP.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_router() -> OpsRouter {
        Arc::new(|path: &str| match path {
            "/healthz" => OpsResponse::ok_text("ok\n".to_string()),
            "/varz" => OpsResponse::ok_json("{\"x\":1}".to_string()),
            _ => OpsResponse::not_found(),
        })
    }

    #[test]
    fn parses_well_formed_request_lines_only() {
        assert_eq!(
            parse_request_path(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some("/metrics".to_string())
        );
        assert_eq!(
            parse_request_path(b"GET /varz?pretty HTTP/1.0\r\n\r\n"),
            Some("/varz".to_string())
        );
        for bad in [
            &b"POST /metrics HTTP/1.1\r\n\r\n"[..],
            b"GET /metrics\r\n\r\n",
            b"GET metrics HTTP/1.1\r\n\r\n",
            b"GET /a b HTTP/1.1\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
            b"",
        ] {
            assert_eq!(parse_request_path(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn handle_request_always_answers() {
        let router = test_router();
        let ok = handle_request(b"GET /healthz HTTP/1.1\r\n\r\n", router.as_ref());
        assert!(ok.starts_with(b"HTTP/1.1 200 OK\r\n"));
        let missing = handle_request(b"GET /nope HTTP/1.1\r\n\r\n", router.as_ref());
        assert!(missing.starts_with(b"HTTP/1.1 404"));
        let garbage = handle_request(b"\x00\x01\x02\r\n\r\n", router.as_ref());
        assert!(garbage.starts_with(b"HTTP/1.1 400"));
    }

    #[test]
    fn serves_over_a_real_socket() {
        let handle = OpsServer::bind("127.0.0.1:0")
            .unwrap()
            .spawn(test_router())
            .unwrap();
        let addr = handle.addr().to_string();
        let (status, body) = http_get(&addr, "/healthz", Duration::from_secs(2)).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = http_get(&addr, "/varz", Duration::from_secs(2)).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"x\":1}"));
        let (status, _) = http_get(&addr, "/missing", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 404);
        handle.join();
    }
}
