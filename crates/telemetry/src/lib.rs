//! # dap-telemetry — zero-dependency observability for the DAP stack
//!
//! DAP's contribution is a per-window control loop, and bandwidth-
//! efficiency claims live or die on traffic *breakdowns* — so this crate
//! makes the control loop observable without giving up the workspace's
//! hermetic build (no registry dependencies) or its determinism:
//!
//! * [`metrics`] — a [`MetricsRegistry`](metrics::MetricsRegistry) of
//!   sharded atomic counters, gauges, and fixed-bucket power-of-two
//!   histograms, cheap enough to stay enabled in release runs.
//! * [`window`] — a [`WindowTraceRecorder`](window::WindowTraceRecorder)
//!   implementing `dap_core`'s `TelemetrySink`: it captures every
//!   [`WindowSnapshot`](dap_core::WindowSnapshot) in a bounded ring
//!   buffer, optionally spilling overflow to a writer as JSONL.
//! * [`export`] — versioned JSONL and CSV run artifacts (schema
//!   [`export::SCHEMA_VERSION`]) with round-trip parsers, parent-directory
//!   creation, and path-reporting errors.
//! * [`summary`] — human-readable digests of window traces, metrics
//!   snapshots (with percentile columns), and profiler rollups.
//! * [`percentile`] — p50/p90/p99/p999 estimation from histogram bucket
//!   counts (upper-bound semantics, `None` for empty histograms).
//! * [`exposition`] — Prometheus text-format rendering of a snapshot
//!   (`# HELP`/`# TYPE` headers, labeled series via [`labeled`]) plus
//!   the in-tree format checker [`check_exposition`].
//! * [`flight`] — a crash-safe [`FlightRecorder`](flight::FlightRecorder)
//!   ring of decision-relevant events, dumped as JSONL on panic,
//!   `SIGUSR1`, reject-rate spikes, or `GET /debug/flight`.
//! * [`http`] — a minimal hand-rolled HTTP/1.1 ops responder
//!   ([`OpsServer`](http::OpsServer)) and one-shot client for the
//!   `/metrics`, `/healthz`, `/varz`, and `/debug/flight` endpoints.
//! * [`json`] — the minimal in-tree JSON reader/writer the exporters use.
//!
//! ## The `telemetry-off` feature
//!
//! Building with `--features telemetry-off` compiles every recording path
//! to a no-op while keeping the full API, so instrumented callers need no
//! `cfg` of their own. [`enabled()`] reports which build is active;
//! artifact emitters should skip writing when it returns `false`.
//!
//! ## Determinism
//!
//! Recording never influences simulation state, and all exported values
//! derive from deterministic simulations — a trace exported at any thread
//! count is bit-identical (counter *totals* are sums of commutative
//! atomic adds). `crates/experiments/tests/determinism.rs` proves this
//! end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod exposition;
pub mod flight;
pub mod http;
pub mod json;
pub mod metrics;
pub mod percentile;
pub mod summary;
pub mod window;

pub use export::{
    ArtifactError, RecoveredCsvTrace, RecoveredWindowTrace, TraceMeta, SCHEMA_NAME, SCHEMA_VERSION,
};
pub use exposition::{check_exposition, labeled, metric_family, render_exposition};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use http::{OpsResponse, OpsRouter, OpsServer, OpsServerConfig};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use percentile::Percentiles;
pub use summary::{summarize, summarize_metrics, summarize_profile_windows, summarize_recovered};
pub use window::{WindowTrace, WindowTraceRecorder};

/// Whether this build records telemetry (`false` under `telemetry-off`).
pub const fn enabled() -> bool {
    cfg!(not(feature = "telemetry-off"))
}
