//! Crash-safe flight recorder: a bounded ring of decision-relevant events.
//!
//! Each component keeps a [`FlightRecorder`] holding the last N
//! structured events — window re-solves with their measured-bandwidth
//! inputs and fraction outputs, rejects with cause, injected faults,
//! lease claims/steals — so that *why the controller just did that* is
//! answerable after a crash, not only while a scrape endpoint is up.
//!
//! Recording is allocation-free: the ring is preallocated at
//! construction and an event is a fixed-size value ([`FlightEvent`]:
//! sequence number, kind, a `&'static str` cause, and six `i64`
//! payload slots), so the hot path is a mutex acquire plus a copy.
//! When the ring is full the oldest event is overwritten and the drop
//! is accounted exactly: `total() - len()` events have been lost, and
//! the dump header records that number.
//!
//! Dumps are JSONL via the in-tree [`crate::json`] writer: a meta line
//! (`{"schema":"dap-flight","version":1,...}`) followed by one event
//! object per line, oldest first. Dumps happen on panic (via
//! [`install_panic_dump`]), on `SIGUSR1` (wired in `dapctl serve`), on
//! a reject-rate spike (wired in `dapd::Server`), and on demand via
//! `GET /debug/flight`.
//!
//! Under the `telemetry-off` feature [`FlightRecorder::record`] is a
//! no-op and dumps contain only the meta line, so the recorder
//! compiles away from figure binaries with byte-identical output —
//! the same contract as the profiler.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::{obj, Json};

/// Default ring capacity: enough to cover several resolve windows of
/// context around a crash without measurable memory cost.
pub const FLIGHT_CAPACITY_DEFAULT: usize = 256;

/// Schema tag on the first line of every flight dump.
pub const FLIGHT_SCHEMA: &str = "dap-flight";

/// What kind of decision-relevant event happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A window re-solve: inputs (measured bandwidths) and outputs
    /// (weights, budget, k).
    Resolve,
    /// A request rejected at a fault boundary; `cause` names the reject
    /// class.
    Reject,
    /// A connection shed at the admission boundary.
    Shed,
    /// An injected or observed fault crossing (chaos harness, I/O
    /// errors); `cause` names the fault class.
    Fault,
    /// A lease claim in the sharded explorer.
    LeaseClaim,
    /// A lease stolen from an expired holder.
    LeaseSteal,
    /// A grid cell quarantined after repeated failures.
    Quarantine,
    /// A worker process restarted by the fleet supervisor.
    WorkerRestart,
    /// A free-form operator mark.
    Mark,
}

impl FlightKind {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Resolve => "resolve",
            FlightKind::Reject => "reject",
            FlightKind::Shed => "shed",
            FlightKind::Fault => "fault",
            FlightKind::LeaseClaim => "lease_claim",
            FlightKind::LeaseSteal => "lease_steal",
            FlightKind::Quarantine => "quarantine",
            FlightKind::WorkerRestart => "worker_restart",
            FlightKind::Mark => "mark",
        }
    }
}

/// Number of `i64` payload slots per event.
pub const FLIGHT_VALS: usize = 6;

/// One recorded event. `vals` is a fixed payload whose meaning depends
/// on `kind`; recorders document their layout at the record site (e.g.
/// a `Resolve` from `dapd` stores window, per-source effective MB/s,
/// the first source's weight in ppm, the window budget, and k·1000).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic per-recorder sequence number, starting at 0.
    pub seq: u64,
    /// Event class.
    pub kind: FlightKind,
    /// Static cause/source tag (`""` when the kind says it all).
    pub cause: &'static str,
    /// Fixed payload slots; unused slots are 0.
    pub vals: [i64; FLIGHT_VALS],
}

struct Ring {
    events: Vec<FlightEvent>,
    head: usize,
    total: u64,
}

/// Bounded, allocation-free ring of [`FlightEvent`]s. Cloning the
/// containing [`Arc`] shares the ring; recording from many threads is
/// serialized by a mutex (the critical section is a fixed-size copy).
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

fn lock_ring(ring: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    ring.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = lock_ring(&self.ring);
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("total", &ring.total)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` events
    /// (preallocated; `capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(Ring {
                events: Vec::with_capacity(capacity),
                head: 0,
                total: 0,
            }),
            capacity,
        }
    }

    /// Creates a recorder with [`FLIGHT_CAPACITY_DEFAULT`] capacity.
    pub fn with_default_capacity() -> Arc<Self> {
        Arc::new(Self::new(FLIGHT_CAPACITY_DEFAULT))
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event. No-op (and allocation-free either way) under
    /// `telemetry-off`.
    pub fn record(&self, kind: FlightKind, cause: &'static str, vals: [i64; FLIGHT_VALS]) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut ring = lock_ring(&self.ring);
            let seq = ring.total;
            ring.total += 1;
            let event = FlightEvent {
                seq,
                kind,
                cause,
                vals,
            };
            if ring.events.len() < self.capacity {
                ring.events.push(event);
            } else {
                let head = ring.head;
                ring.events[head] = event;
                ring.head = (head + 1) % self.capacity;
            }
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (kind, cause, vals);
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        lock_ring(&self.ring).total
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        lock_ring(&self.ring).events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to ring overwrite: `total() - len()`, exactly.
    pub fn dropped(&self) -> u64 {
        let ring = lock_ring(&self.ring);
        ring.total - ring.events.len() as u64
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let ring = lock_ring(&self.ring);
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.head..]);
        out.extend_from_slice(&ring.events[..ring.head]);
        out
    }

    /// Renders the dump: a meta line then one JSON object per event,
    /// oldest first. `component` names the recorder in the meta line.
    pub fn dump_jsonl(&self, component: &str) -> String {
        let events = self.snapshot();
        let total = self.total();
        let dropped = total - events.len() as u64;
        let mut out = obj([
            ("schema", Json::Str(FLIGHT_SCHEMA.to_string())),
            ("version", Json::Num(1.0)),
            ("component", Json::Str(component.to_string())),
            ("capacity", Json::Num(self.capacity as f64)),
            ("total", Json::Num(total as f64)),
            ("dropped", Json::Num(dropped as f64)),
        ])
        .to_string_compact();
        out.push('\n');
        for event in &events {
            let vals = event.vals.iter().map(|&v| Json::Num(v as f64)).collect();
            out.push_str(
                &obj([
                    ("seq", Json::Num(event.seq as f64)),
                    ("kind", Json::Str(event.kind.as_str().to_string())),
                    ("cause", Json::Str(event.cause.to_string())),
                    ("vals", Json::Arr(vals)),
                ])
                .to_string_compact(),
            );
            out.push('\n');
        }
        out
    }

    /// Writes [`dump_jsonl`](Self::dump_jsonl) to `path` atomically
    /// (tmp + rename), creating parent directories.
    pub fn dump_to(&self, path: &Path, component: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.dump_jsonl(component).as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// Validates a flight dump: the meta line carries the
/// [`FLIGHT_SCHEMA`] tag and every following line parses as a JSON
/// event object. Returns `(dropped, events)` on success.
pub fn parse_flight_dump(text: &str) -> Result<(u64, Vec<Json>), String> {
    let mut lines = text.lines();
    let meta_line = lines.next().ok_or("empty flight dump")?;
    let meta = crate::json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
    if meta.get("schema").and_then(Json::as_str) != Some(FLIGHT_SCHEMA) {
        return Err(format!("meta line is not {FLIGHT_SCHEMA:?}: {meta_line}"));
    }
    let dropped = meta
        .get("dropped")
        .and_then(Json::as_u64)
        .ok_or("meta line missing dropped")?;
    let mut events = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let event = crate::json::parse(line).map_err(|e| format!("event {}: {e}", idx + 1))?;
        for key in ["seq", "kind", "cause", "vals"] {
            if event.get(key).is_none() {
                return Err(format!("event {} missing {key:?}: {line}", idx + 1));
            }
        }
        events.push(event);
    }
    Ok((dropped, events))
}

/// Installs a panic hook that dumps `recorder` to `path` before
/// delegating to the previously installed hook, so a crashing process
/// leaves its last-N decisions on disk. Safe to call once per process;
/// later installs chain.
pub fn install_panic_dump(recorder: Arc<FlightRecorder>, path: PathBuf, component: &'static str) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = recorder.dump_to(&path, component);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(recorder: &FlightRecorder, i: i64) {
        recorder.record(FlightKind::Mark, "test", [i, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn ring_retains_newest_and_accounts_drops_exactly() {
        let recorder = FlightRecorder::new(8);
        for i in 0..20 {
            ev(&recorder, i);
        }
        if !crate::enabled() {
            assert_eq!(recorder.total(), 0);
            return;
        }
        assert_eq!(recorder.total(), 20);
        assert_eq!(recorder.len(), 8);
        assert_eq!(recorder.dropped(), 12);
        let seqs: Vec<u64> = recorder.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn dump_parses_and_meta_matches_ring_state() {
        let recorder = FlightRecorder::new(4);
        for i in 0..6 {
            ev(&recorder, i);
        }
        let dump = recorder.dump_jsonl("unit");
        let (dropped, events) = parse_flight_dump(&dump).unwrap();
        if crate::enabled() {
            assert_eq!(dropped, 2);
            assert_eq!(events.len(), 4);
            assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("mark"));
            assert_eq!(events[0].get("seq").and_then(Json::as_u64), Some(2));
        } else {
            assert_eq!(dropped, 0);
            assert!(events.is_empty());
        }
    }

    #[test]
    fn dump_to_writes_atomically() {
        let dir = std::env::temp_dir().join(format!("dap-flight-{}", std::process::id()));
        let path = dir.join("flight.jsonl");
        let recorder = FlightRecorder::new(4);
        ev(&recorder, 1);
        recorder.dump_to(&path, "unit").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        parse_flight_dump(&text).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(FlightKind::Resolve.as_str(), "resolve");
        assert_eq!(FlightKind::LeaseSteal.as_str(), "lease_steal");
        assert_eq!(FlightKind::WorkerRestart.as_str(), "worker_restart");
    }
}
