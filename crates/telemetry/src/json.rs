//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace builds hermetically (no registry dependencies), so the
//! exporters cannot lean on `serde_json`. This module implements exactly
//! the subset the run artifacts need: objects, arrays, strings (with
//! escape handling), booleans, null, and numbers carried as `f64` —
//! every integer the trace emits (`u64` window indices and cycle counts
//! well below 2^53, `u32` counts) round-trips exactly through an `f64`.
//!
//! Numbers are formatted with Rust's `{}` for `f64`, which prints the
//! shortest string that parses back to the same value — so fractions
//! survive a JSONL round trip bit-for-bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, carried as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A member of the value if it is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON (no whitespace, sorted keys).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience: builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{}` on f64 prints the shortest round-trip representation;
        // integral values get a bare integer form ("3" not "3.0" would be
        // wrong — Rust prints "3" for 3.0_f64, which JSON accepts).
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; the trace never produces them, but degrade
        // to null rather than emit an unparseable token.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `input`.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error,
/// including trailing non-whitespace after the document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs don't appear in our artifacts;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    // invariant: this match arm only runs when peek saw a
                    // byte, so the remainder has at least one char.
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let value = parse(text).unwrap();
            assert_eq!(parse(&value.to_string_compact()).unwrap(), value);
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let value = obj([
            ("name", Json::Str("f_i vs \"ideal\"\n".to_string())),
            (
                "values",
                Json::Arr(vec![
                    Json::Num(0.7333333333333333),
                    Json::Num(0.26666666666666666),
                ]),
            ),
            ("count", Json::Num(42.0)),
            ("ok", Json::Bool(true)),
        ]);
        let text = value.to_string_compact();
        let back = parse(&text).unwrap();
        assert_eq!(back, value);
        // Shortest-round-trip float printing preserves the exact f64.
        assert_eq!(
            back.get("values").unwrap().as_arr().unwrap()[0]
                .as_f64()
                .unwrap(),
            0.7333333333333333_f64
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["{", "[1,", "\"open", "tru", "{\"a\" 1}", "1 2"] {
            assert!(parse(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn accessors_discriminate_types() {
        let value = parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(value.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("n").unwrap().as_str(), None);
        assert_eq!(value.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(value.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let value = Json::Str("π ≈ 3.14159\t\"quoted\"\u{1}".to_string());
        let text = value.to_string_compact();
        assert_eq!(parse(&text).unwrap(), value);
        assert!(text.contains("\\u0001"));
    }
}
