//! Versioned run artifacts: JSONL and CSV window traces, with parsers.
//!
//! Artifact layout (schema `dap-window-trace`, version [`SCHEMA_VERSION`]):
//!
//! * **JSONL** — first line is a header object carrying the schema name,
//!   version, run metadata ([`TraceMeta`]), and retention counts; every
//!   following line is one window record. Streams and `grep`s well, and
//!   the in-tree [`crate::json`] parser reads it back losslessly
//!   (fraction floats are printed shortest-round-trip).
//! * **CSV** — a `#`-prefixed comment line with the same header fields,
//!   then a column-name row and one row per window. Loads directly into
//!   pandas/gnuplot (`comment='#'`).
//!
//! Writers create missing parent directories and report the offending
//! path on failure ([`ArtifactError`]) rather than a bare `io::Error`.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use dap_core::{SourceFractions, TechniqueCounts, WindowSnapshot, WindowStats};

use crate::json::{obj, parse, Json};
use crate::window::WindowTrace;

/// Name of the window-trace artifact schema.
pub const SCHEMA_NAME: &str = "dap-window-trace";

/// Version of the artifact schema. Bump when a field is added, removed,
/// or reinterpreted; parsers reject mismatching versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Run-identifying metadata stored in every artifact header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Human-chosen run label (e.g. `"dap/mix04"`).
    pub label: String,
    /// Cache architecture the controller ran (`"sectored"`, `"alloy"`,
    /// `"edram"`).
    pub arch: String,
    /// Window length `W` in CPU cycles.
    pub window_cycles: u32,
}

/// A failure to write or read a run artifact, carrying the path involved.
#[derive(Debug)]
pub enum ArtifactError {
    /// An I/O operation on `path` failed.
    Io {
        /// What was being attempted (e.g. `"create directory"`, `"write"`).
        action: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The contents of `path` did not match the schema.
    Parse {
        /// The file being parsed.
        path: PathBuf,
        /// One-based line number of the offending record.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io {
                action,
                path,
                source,
            } => write!(f, "failed to {action} `{}`: {source}", path.display()),
            ArtifactError::Parse {
                path,
                line,
                message,
            } => write!(f, "`{}` line {line}: {message}", path.display()),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            ArtifactError::Parse { .. } => None,
        }
    }
}

fn io_err<'a>(
    action: &'static str,
    path: &'a Path,
) -> impl FnOnce(io::Error) -> ArtifactError + 'a {
    move |source| ArtifactError::Io {
        action,
        path: path.to_path_buf(),
        source,
    }
}

/// Creates `path`'s parent directory (and ancestors) if missing.
///
/// # Errors
///
/// Returns an [`ArtifactError::Io`] naming the directory on failure.
pub fn ensure_parent_dir(path: &Path) -> Result<(), ArtifactError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(io_err("create directory", parent))?;
        }
    }
    Ok(())
}

fn fraction_array(values: &[f64], sources: usize) -> Json {
    Json::Arr(values.iter().take(sources).map(|&v| Json::Num(v)).collect())
}

fn technique_json(counts: &TechniqueCounts) -> Json {
    obj([
        ("fwb", Json::Num(f64::from(counts.fwb))),
        ("wb", Json::Num(f64::from(counts.wb))),
        ("ifrm", Json::Num(f64::from(counts.ifrm))),
        ("sfrm", Json::Num(f64::from(counts.sfrm))),
        ("wt", Json::Num(f64::from(counts.write_through))),
    ])
}

fn window_json(snapshot: &WindowSnapshot) -> Json {
    let sources = usize::from(snapshot.fractions.sources);
    obj([
        ("window", Json::Num(snapshot.window_index as f64)),
        ("end_cycle", Json::Num(snapshot.end_cycle as f64)),
        ("partitioned", Json::Bool(snapshot.partitioned)),
        (
            "stats",
            obj([
                ("cache", Json::Num(f64::from(snapshot.stats.cache_accesses))),
                (
                    "cache_r",
                    Json::Num(f64::from(snapshot.stats.cache_read_accesses)),
                ),
                (
                    "cache_w",
                    Json::Num(f64::from(snapshot.stats.cache_write_accesses)),
                ),
                ("mm", Json::Num(f64::from(snapshot.stats.mm_accesses))),
                ("rm", Json::Num(f64::from(snapshot.stats.read_misses))),
                ("wm", Json::Num(f64::from(snapshot.stats.writes))),
                ("crh", Json::Num(f64::from(snapshot.stats.clean_read_hits))),
            ]),
        ),
        ("granted", technique_json(&snapshot.granted)),
        ("applied", technique_json(&snapshot.applied)),
        ("sources", Json::Num(f64::from(snapshot.fractions.sources))),
        (
            "solved",
            fraction_array(&snapshot.fractions.solved, sources),
        ),
        ("ideal", fraction_array(&snapshot.fractions.ideal, sources)),
    ])
}

/// Serializes one window snapshot as a single compact JSON line (no
/// trailing newline). Used for both the JSONL artifact body and the
/// recorder's spill writer, so spilled and retained records share one
/// format.
pub fn window_jsonl_line(snapshot: &WindowSnapshot) -> String {
    window_json(snapshot).to_string_compact()
}

fn need_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn need_u32(value: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(need_u64(value, key)?).map_err(|_| format!("field `{key}` exceeds u32"))
}

fn technique_from_json(value: &Json) -> Result<TechniqueCounts, String> {
    Ok(TechniqueCounts {
        fwb: need_u32(value, "fwb")?,
        wb: need_u32(value, "wb")?,
        ifrm: need_u32(value, "ifrm")?,
        sfrm: need_u32(value, "sfrm")?,
        write_through: need_u32(value, "wt")?,
    })
}

fn fractions_from_json(value: &Json, key: &str, sources: u8) -> Result<[f64; 3], String> {
    let arr = value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    if arr.len() != usize::from(sources) {
        return Err(format!(
            "`{key}` has {} entries, expected {sources}",
            arr.len()
        ));
    }
    let mut out = [0.0f64; 3];
    for (slot, item) in out.iter_mut().zip(arr.iter()) {
        *slot = item
            .as_f64()
            .ok_or_else(|| format!("non-numeric entry in `{key}`"))?;
    }
    Ok(out)
}

/// Parses one JSONL window line back into a snapshot.
///
/// # Errors
///
/// Returns a description of the first missing or ill-typed field.
pub fn window_from_jsonl_line(line: &str) -> Result<WindowSnapshot, String> {
    let value = parse(line)?;
    let stats = value.get("stats").ok_or("missing object field `stats`")?;
    let sources =
        u8::try_from(need_u64(&value, "sources")?).map_err(|_| "field `sources` exceeds u8")?;
    if !(2..=3).contains(&sources) {
        return Err(format!("`sources` must be 2 or 3, got {sources}"));
    }
    Ok(WindowSnapshot {
        window_index: need_u64(&value, "window")?,
        end_cycle: need_u64(&value, "end_cycle")?,
        partitioned: value
            .get("partitioned")
            .and_then(Json::as_bool)
            .ok_or("missing boolean field `partitioned`")?,
        stats: WindowStats {
            cache_accesses: need_u32(stats, "cache")?,
            cache_read_accesses: need_u32(stats, "cache_r")?,
            cache_write_accesses: need_u32(stats, "cache_w")?,
            mm_accesses: need_u32(stats, "mm")?,
            read_misses: need_u32(stats, "rm")?,
            writes: need_u32(stats, "wm")?,
            clean_read_hits: need_u32(stats, "crh")?,
        },
        granted: technique_from_json(
            value
                .get("granted")
                .ok_or("missing object field `granted`")?,
        )?,
        applied: technique_from_json(
            value
                .get("applied")
                .ok_or("missing object field `applied`")?,
        )?,
        fractions: SourceFractions {
            sources,
            solved: fractions_from_json(&value, "solved", sources)?,
            ideal: fractions_from_json(&value, "ideal", sources)?,
        },
    })
}

fn header_json(meta: &TraceMeta, trace: &WindowTrace) -> Json {
    obj([
        ("schema", Json::Str(SCHEMA_NAME.to_string())),
        ("version", Json::Num(f64::from(SCHEMA_VERSION))),
        ("label", Json::Str(meta.label.clone())),
        ("arch", Json::Str(meta.arch.clone())),
        ("window_cycles", Json::Num(f64::from(meta.window_cycles))),
        ("windows", Json::Num(trace.records.len() as f64)),
        ("spilled", Json::Num(trace.spilled as f64)),
        ("dropped", Json::Num(trace.dropped as f64)),
    ])
}

/// Renders a full JSONL artifact (header line + one line per window).
pub fn window_trace_jsonl(meta: &TraceMeta, trace: &WindowTrace) -> String {
    let mut out = header_json(meta, trace).to_string_compact();
    out.push('\n');
    for record in &trace.records {
        out.push_str(&window_jsonl_line(record));
        out.push('\n');
    }
    out
}

/// Writes the JSONL artifact to `path`, creating parent directories.
///
/// # Errors
///
/// Returns an [`ArtifactError`] naming the path that failed.
pub fn write_window_trace_jsonl(
    path: &Path,
    meta: &TraceMeta,
    trace: &WindowTrace,
) -> Result<(), ArtifactError> {
    ensure_parent_dir(path)?;
    fs::write(path, window_trace_jsonl(meta, trace)).map_err(io_err("write", path))
}

/// Reads a JSONL artifact back, validating the schema header.
///
/// # Errors
///
/// Returns an [`ArtifactError`] naming the path and line of the first
/// I/O, schema, or record problem.
pub fn read_window_trace_jsonl(path: &Path) -> Result<(TraceMeta, WindowTrace), ArtifactError> {
    let text = fs::read_to_string(path).map_err(io_err("read", path))?;
    let parse_err = |line: usize, message: String| ArtifactError::Parse {
        path: path.to_path_buf(),
        line,
        message,
    };
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty artifact".to_string()))?;
    let header = parse(header_line).map_err(|e| parse_err(1, e))?;
    if header.get("schema").and_then(Json::as_str) != Some(SCHEMA_NAME) {
        return Err(parse_err(1, format!("not a {SCHEMA_NAME} artifact")));
    }
    let version = header.get("version").and_then(Json::as_u64);
    if version != Some(u64::from(SCHEMA_VERSION)) {
        return Err(parse_err(
            1,
            format!("unsupported schema version {version:?}, expected {SCHEMA_VERSION}"),
        ));
    }
    let meta = TraceMeta {
        label: header
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        arch: header
            .get("arch")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        window_cycles: header
            .get("window_cycles")
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| parse_err(1, "missing `window_cycles`".to_string()))?,
    };
    let declared = header.get("windows").and_then(Json::as_u64);
    let mut trace = WindowTrace {
        records: Vec::new(),
        spilled: header.get("spilled").and_then(Json::as_u64).unwrap_or(0),
        dropped: header.get("dropped").and_then(Json::as_u64).unwrap_or(0),
    };
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        trace
            .records
            .push(window_from_jsonl_line(line).map_err(|e| parse_err(i + 2, e))?);
    }
    if let Some(declared) = declared {
        if declared != trace.records.len() as u64 {
            return Err(parse_err(
                1,
                format!(
                    "header declares {declared} windows but {} records follow",
                    trace.records.len()
                ),
            ));
        }
    }
    Ok((meta, trace))
}

/// A window trace read leniently: corrupt record lines skipped and
/// counted instead of failing the whole artifact.
#[derive(Debug, Clone)]
pub struct RecoveredWindowTrace {
    /// The artifact's run metadata.
    pub meta: TraceMeta,
    /// Every record that parsed, in file order.
    pub trace: WindowTrace,
    /// Record lines that were corrupt or truncated and were skipped.
    pub parse_errors: u64,
}

/// Reads a JSONL artifact tolerating corrupt record lines.
///
/// A crashed or `kill -9`'d run leaves a truncated final line; a partial
/// copy or disk fault can corrupt lines anywhere. That must cost those
/// records, not the whole artifact — every line that fails to parse is
/// skipped and counted in [`RecoveredWindowTrace::parse_errors`], and the
/// header's declared window count is not enforced (skipped lines make it
/// meaningless). The header itself must still parse: without a valid
/// schema line nothing identifies the file as a window trace.
///
/// # Errors
///
/// Returns an [`ArtifactError`] only for I/O failures or an unreadable /
/// mismatching schema header.
pub fn read_window_trace_jsonl_lenient(path: &Path) -> Result<RecoveredWindowTrace, ArtifactError> {
    let text = fs::read_to_string(path).map_err(io_err("read", path))?;
    let parse_err = |line: usize, message: String| ArtifactError::Parse {
        path: path.to_path_buf(),
        line,
        message,
    };
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty artifact".to_string()))?;
    let header = parse(header_line).map_err(|e| parse_err(1, e))?;
    if header.get("schema").and_then(Json::as_str) != Some(SCHEMA_NAME) {
        return Err(parse_err(1, format!("not a {SCHEMA_NAME} artifact")));
    }
    let version = header.get("version").and_then(Json::as_u64);
    if version != Some(u64::from(SCHEMA_VERSION)) {
        return Err(parse_err(
            1,
            format!("unsupported schema version {version:?}, expected {SCHEMA_VERSION}"),
        ));
    }
    let meta = TraceMeta {
        label: header
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        arch: header
            .get("arch")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        window_cycles: header
            .get("window_cycles")
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| parse_err(1, "missing `window_cycles`".to_string()))?,
    };
    let mut trace = WindowTrace {
        records: Vec::new(),
        spilled: header.get("spilled").and_then(Json::as_u64).unwrap_or(0),
        dropped: header.get("dropped").and_then(Json::as_u64).unwrap_or(0),
    };
    let mut parse_errors = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match window_from_jsonl_line(line) {
            Ok(record) => trace.records.push(record),
            Err(_) => parse_errors += 1,
        }
    }
    Ok(RecoveredWindowTrace {
        meta,
        trace,
        parse_errors,
    })
}

/// Column names of the CSV artifact body, in order.
pub const CSV_COLUMNS: &[&str] = &[
    "window",
    "end_cycle",
    "partitioned",
    "cache_accesses",
    "cache_read_accesses",
    "cache_write_accesses",
    "mm_accesses",
    "read_misses",
    "writes",
    "clean_read_hits",
    "granted_fwb",
    "granted_wb",
    "granted_ifrm",
    "granted_sfrm",
    "granted_wt",
    "applied_fwb",
    "applied_wb",
    "applied_ifrm",
    "applied_sfrm",
    "applied_wt",
    "sources",
    "f0",
    "f1",
    "f2",
    "ideal0",
    "ideal1",
    "ideal2",
];

/// Renders a full CSV artifact (comment header + column row + one row
/// per window). Unused third-source columns are written as `0`.
pub fn window_trace_csv(meta: &TraceMeta, trace: &WindowTrace) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "# {SCHEMA_NAME} v{SCHEMA_VERSION} label={} arch={} window_cycles={} windows={} spilled={} dropped={}\n",
        meta.label,
        meta.arch,
        meta.window_cycles,
        trace.records.len(),
        trace.spilled,
        trace.dropped,
    );
    out.push_str(&CSV_COLUMNS.join(","));
    out.push('\n');
    for r in &trace.records {
        let f = &r.fractions;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.window_index,
            r.end_cycle,
            u8::from(r.partitioned),
            r.stats.cache_accesses,
            r.stats.cache_read_accesses,
            r.stats.cache_write_accesses,
            r.stats.mm_accesses,
            r.stats.read_misses,
            r.stats.writes,
            r.stats.clean_read_hits,
            r.granted.fwb,
            r.granted.wb,
            r.granted.ifrm,
            r.granted.sfrm,
            r.granted.write_through,
            r.applied.fwb,
            r.applied.wb,
            r.applied.ifrm,
            r.applied.sfrm,
            r.applied.write_through,
            f.sources,
            f.solved[0],
            f.solved[1],
            f.solved[2],
            f.ideal[0],
            f.ideal[1],
            f.ideal[2],
        );
    }
    out
}

/// Writes the CSV artifact to `path`, creating parent directories.
///
/// # Errors
///
/// Returns an [`ArtifactError`] naming the path that failed.
pub fn write_window_trace_csv(
    path: &Path,
    meta: &TraceMeta,
    trace: &WindowTrace,
) -> Result<(), ArtifactError> {
    ensure_parent_dir(path)?;
    fs::write(path, window_trace_csv(meta, trace)).map_err(io_err("write", path))
}

/// Reads the window records back out of a CSV artifact.
///
/// Only the per-window rows are reconstructed (the comment header is
/// validated for schema name/version but its metadata is not parsed —
/// the JSONL artifact is the authoritative machine-readable form).
///
/// # Errors
///
/// Returns an [`ArtifactError`] naming the path and line of the first
/// problem.
pub fn read_window_trace_csv(path: &Path) -> Result<Vec<WindowSnapshot>, ArtifactError> {
    let text = fs::read_to_string(path).map_err(io_err("read", path))?;
    let parse_err = |line: usize, message: String| ArtifactError::Parse {
        path: path.to_path_buf(),
        line,
        message,
    };
    let mut lines = text.lines().enumerate();
    let (_, comment) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty artifact".to_string()))?;
    let expected_tag = format!("# {SCHEMA_NAME} v{SCHEMA_VERSION} ");
    if !comment.starts_with(&expected_tag) {
        return Err(parse_err(
            1,
            format!("missing `{expected_tag}...` comment header"),
        ));
    }
    let (_, columns) = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing column row".to_string()))?;
    if columns != CSV_COLUMNS.join(",") {
        return Err(parse_err(2, "unexpected column layout".to_string()));
    }
    let mut records = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != CSV_COLUMNS.len() {
            return Err(parse_err(
                i + 1,
                format!("{} fields, expected {}", fields.len(), CSV_COLUMNS.len()),
            ));
        }
        let int = |idx: usize| -> Result<u64, ArtifactError> {
            fields[idx]
                .parse::<u64>()
                .map_err(|_| parse_err(i + 1, format!("bad integer in `{}`", CSV_COLUMNS[idx])))
        };
        let int32 = |idx: usize| -> Result<u32, ArtifactError> {
            int(idx).and_then(|v| {
                u32::try_from(v)
                    .map_err(|_| parse_err(i + 1, format!("`{}` exceeds u32", CSV_COLUMNS[idx])))
            })
        };
        let float = |idx: usize| -> Result<f64, ArtifactError> {
            fields[idx]
                .parse::<f64>()
                .map_err(|_| parse_err(i + 1, format!("bad float in `{}`", CSV_COLUMNS[idx])))
        };
        records.push(WindowSnapshot {
            window_index: int(0)?,
            end_cycle: int(1)?,
            partitioned: int(2)? != 0,
            stats: WindowStats {
                cache_accesses: int32(3)?,
                cache_read_accesses: int32(4)?,
                cache_write_accesses: int32(5)?,
                mm_accesses: int32(6)?,
                read_misses: int32(7)?,
                writes: int32(8)?,
                clean_read_hits: int32(9)?,
            },
            granted: TechniqueCounts {
                fwb: int32(10)?,
                wb: int32(11)?,
                ifrm: int32(12)?,
                sfrm: int32(13)?,
                write_through: int32(14)?,
            },
            applied: TechniqueCounts {
                fwb: int32(15)?,
                wb: int32(16)?,
                ifrm: int32(17)?,
                sfrm: int32(18)?,
                write_through: int32(19)?,
            },
            fractions: SourceFractions {
                sources: int32(20)? as u8,
                solved: [float(21)?, float(22)?, float(23)?],
                ideal: [float(24)?, float(25)?, float(26)?],
            },
        });
    }
    Ok(records)
}

/// CSV window records read leniently: corrupt rows skipped and counted
/// instead of failing the whole artifact.
#[derive(Debug, Clone)]
pub struct RecoveredCsvTrace {
    /// Every row that parsed, in file order.
    pub records: Vec<WindowSnapshot>,
    /// Rows that were corrupt or truncated and were skipped.
    pub parse_errors: u64,
}

/// Reads a CSV artifact tolerating corrupt rows — the CSV twin of
/// [`read_window_trace_jsonl_lenient`], with the same contract: a torn
/// tail or a corrupted row costs that record, not the artifact, and
/// every skipped row is counted in [`RecoveredCsvTrace::parse_errors`].
/// The schema comment header and the column row must still be intact —
/// without them nothing identifies the file as a window trace (or says
/// how to interpret its columns).
///
/// # Errors
///
/// Returns an [`ArtifactError`] only for I/O failures or a missing /
/// mismatching comment header or column row.
pub fn read_window_trace_csv_lenient(path: &Path) -> Result<RecoveredCsvTrace, ArtifactError> {
    let text = fs::read_to_string(path).map_err(io_err("read", path))?;
    let parse_err = |line: usize, message: String| ArtifactError::Parse {
        path: path.to_path_buf(),
        line,
        message,
    };
    let mut lines = text.lines();
    let comment = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty artifact".to_string()))?;
    let expected_tag = format!("# {SCHEMA_NAME} v{SCHEMA_VERSION} ");
    if !comment.starts_with(&expected_tag) {
        return Err(parse_err(
            1,
            format!("missing `{expected_tag}...` comment header"),
        ));
    }
    let columns = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing column row".to_string()))?;
    if columns != CSV_COLUMNS.join(",") {
        return Err(parse_err(2, "unexpected column layout".to_string()));
    }
    let mut records = Vec::new();
    let mut parse_errors = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match csv_row_to_snapshot(line) {
            Some(record) => records.push(record),
            None => parse_errors += 1,
        }
    }
    Ok(RecoveredCsvTrace {
        records,
        parse_errors,
    })
}

/// Parses one CSV body row, `None` on any missing or ill-typed field.
fn csv_row_to_snapshot(line: &str) -> Option<WindowSnapshot> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != CSV_COLUMNS.len() {
        return None;
    }
    let int = |idx: usize| fields[idx].parse::<u64>().ok();
    let int32 = |idx: usize| fields[idx].parse::<u32>().ok();
    let float = |idx: usize| fields[idx].parse::<f64>().ok();
    Some(WindowSnapshot {
        window_index: int(0)?,
        end_cycle: int(1)?,
        partitioned: int(2)? != 0,
        stats: WindowStats {
            cache_accesses: int32(3)?,
            cache_read_accesses: int32(4)?,
            cache_write_accesses: int32(5)?,
            mm_accesses: int32(6)?,
            read_misses: int32(7)?,
            writes: int32(8)?,
            clean_read_hits: int32(9)?,
        },
        granted: TechniqueCounts {
            fwb: int32(10)?,
            wb: int32(11)?,
            ifrm: int32(12)?,
            sfrm: int32(13)?,
            write_through: int32(14)?,
        },
        applied: TechniqueCounts {
            fwb: int32(15)?,
            wb: int32(16)?,
            ifrm: int32(17)?,
            sfrm: int32(18)?,
            write_through: int32(19)?,
        },
        fractions: SourceFractions {
            sources: u8::try_from(int32(20)?).ok()?,
            solved: [float(21)?, float(22)?, float(23)?],
            ideal: [float(24)?, float(25)?, float(26)?],
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::telemetry::sectored_fractions;
    use dap_core::{Ratio, SectoredPlan};

    fn sample_trace() -> (TraceMeta, WindowTrace) {
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            read_misses: 6,
            writes: 10,
            clean_read_hits: 12,
            ..Default::default()
        };
        let plan = SectoredPlan {
            n_fwb: 6,
            wb_scaled: 45,
            ifrm_scaled: 30,
            n_sfrm: 2,
            k_plus_one_num: 15,
        };
        let records = (0..5u64)
            .map(|i| WindowSnapshot {
                window_index: i,
                end_cycle: (i + 1) * 64,
                stats,
                partitioned: i % 2 == 0,
                granted: TechniqueCounts {
                    fwb: 6,
                    wb: 3,
                    ifrm: 2,
                    sfrm: 2,
                    write_through: 0,
                },
                applied: TechniqueCounts {
                    fwb: 4,
                    wb: 3,
                    ifrm: 1,
                    sfrm: 0,
                    write_through: 0,
                },
                fractions: sectored_fractions(&stats, &plan, Ratio::new(11, 4)),
            })
            .collect();
        (
            TraceMeta {
                label: "dap/mix00".to_string(),
                arch: "sectored".to_string(),
                window_cycles: 64,
            },
            WindowTrace {
                records,
                spilled: 2,
                dropped: 1,
            },
        )
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let (meta, trace) = sample_trace();
        let dir = std::env::temp_dir().join("dap-telemetry-test-jsonl");
        let path = dir.join("nested/never/created/trace.jsonl");
        let _ = fs::remove_dir_all(&dir);
        write_window_trace_jsonl(&path, &meta, &trace).unwrap();
        let (meta2, trace2) = read_window_trace_jsonl(&path).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(trace2.records, trace.records);
        assert_eq!(trace2.spilled, 2);
        assert_eq!(trace2.dropped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let (meta, trace) = sample_trace();
        let dir = std::env::temp_dir().join("dap-telemetry-test-csv");
        let path = dir.join("deep/trace.csv");
        let _ = fs::remove_dir_all(&dir);
        write_window_trace_csv(&path, &meta, &trace).unwrap();
        let records = read_window_trace_csv(&path).unwrap();
        assert_eq!(records, trace.records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected_with_path_and_line() {
        let dir = std::env::temp_dir().join("dap-telemetry-test-ver");
        let path = dir.join("trace.jsonl");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            &path,
            "{\"schema\":\"dap-window-trace\",\"version\":99,\"window_cycles\":64}\n",
        )
        .unwrap();
        let err = read_window_trace_jsonl(&path).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("trace.jsonl"), "{text}");
        assert!(text.contains("line 1"), "{text}");
        assert!(text.contains("99"), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_reports_offending_path() {
        let (meta, trace) = sample_trace();
        // Writing *under* an existing file must fail with that path named.
        let dir = std::env::temp_dir().join("dap-telemetry-test-errpath");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        fs::write(&blocker, "x").unwrap();
        let target = blocker.join("sub/trace.jsonl");
        let err = write_window_trace_jsonl(&target, &meta, &trace).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("blocker"), "path missing from: {text}");
        assert!(std::error::Error::source(&err).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn declared_window_count_is_validated() {
        let (meta, mut trace) = sample_trace();
        let text = window_trace_jsonl(&meta, &trace);
        trace.records.pop();
        let dir = std::env::temp_dir().join("dap-telemetry-test-count");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        // Drop the last record line but keep the header declaring 5.
        let truncated: Vec<&str> = text.lines().take(5).collect();
        fs::write(&path, truncated.join("\n")).unwrap();
        let err = read_window_trace_jsonl(&path).unwrap_err();
        assert!(err.to_string().contains("declares 5"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_line_matches_artifact_body_format() {
        let (_, trace) = sample_trace();
        let line = window_jsonl_line(&trace.records[0]);
        let back = window_from_jsonl_line(&line).unwrap();
        assert_eq!(back, trace.records[0]);
    }
}
