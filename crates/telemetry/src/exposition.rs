//! Prometheus-text-format exposition of a [`MetricsSnapshot`].
//!
//! [`render_exposition`] turns a snapshot into the plain-text format a
//! Prometheus scrape endpoint serves: one `# TYPE` comment per metric,
//! counters/gauges as single samples, and histograms as the standard
//! cumulative `_bucket{le="..."}` series with `_sum` and `_count`. Metric
//! names are sanitized to the Prometheus charset (`[a-zA-Z0-9_:]`), so
//! the registry's dotted names (`mem.read_latency`) come out as
//! `mem_read_latency`.
//!
//! Output is deterministic: snapshots iterate in name order, and bucket
//! rows stop at the last non-empty bucket (the `+Inf` row always closes
//! the series), so exports diff cleanly between runs.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Maps a registry metric name onto the Prometheus charset: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is
/// prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let last_used = hist
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .unwrap_or(0)
        .min(HISTOGRAM_BUCKETS - 2);
    let mut cumulative = 0u64;
    for bucket in 0..=last_used {
        cumulative += hist.buckets[bucket];
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper_bound(bucket)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{name}_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_count {}", hist.count);
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        render_histogram(&mut out, &sanitize_metric_name(name), hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_for, MetricsRegistry};

    #[test]
    fn sanitizes_dotted_and_leading_digit_names() {
        assert_eq!(sanitize_metric_name("mem.read_latency"), "mem_read_latency");
        assert_eq!(
            sanitize_metric_name("prof.dap-decision"),
            "prof_dap_decision"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        if !crate::enabled() {
            return;
        }
        let registry = MetricsRegistry::new();
        registry.counter("mem.demand_reads").add(7);
        registry.gauge("exec.cells_running").set(-2);
        let hist = registry.histogram("mem.read_latency");
        for v in [1u64, 2, 300] {
            hist.record(v);
        }
        let text = render_exposition(&registry.snapshot());
        assert!(text.contains("# TYPE mem_demand_reads counter\nmem_demand_reads 7\n"));
        assert!(text.contains("# TYPE exec_cells_running gauge\nexec_cells_running -2\n"));
        assert!(text.contains("# TYPE mem_read_latency histogram"));
        // Cumulative buckets: le="1" sees 1 sample, le="2" sees 2, the
        // bucket covering 300 sees all 3, and +Inf closes at the count.
        assert!(
            text.contains("mem_read_latency_bucket{le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("mem_read_latency_bucket{le=\"2\"} 2\n"),
            "{text}"
        );
        let upper = bucket_upper_bound(bucket_for(300));
        assert!(
            text.contains(&format!("mem_read_latency_bucket{{le=\"{upper}\"}} 3\n")),
            "{text}"
        );
        assert!(text.contains("mem_read_latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("mem_read_latency_sum 303\n"));
        assert!(text.contains("mem_read_latency_count 3\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_string() {
        let text = render_exposition(&MetricsSnapshot::default());
        assert!(text.is_empty());
    }

    #[test]
    fn overflow_bucket_never_gets_a_numeric_le_row() {
        // A sample in the overflow bucket must appear only in the +Inf
        // row: u64::MAX is not a meaningful numeric bucket bound.
        let mut snapshot = MetricsSnapshot::default();
        let mut buckets = [0u64; crate::metrics::HISTOGRAM_BUCKETS];
        buckets[crate::metrics::HISTOGRAM_BUCKETS - 1] = 1;
        snapshot.histograms.insert(
            "lat".to_string(),
            HistogramSnapshot {
                count: 1,
                sum: u64::MAX,
                buckets,
            },
        );
        let text = render_exposition(&snapshot);
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
    }
}
