//! Prometheus-text-format exposition of a [`MetricsSnapshot`].
//!
//! [`render_exposition`] turns a snapshot into the plain-text format a
//! Prometheus scrape endpoint serves: one `# HELP` (when registered via
//! [`MetricsRegistry::describe`]) and one `# TYPE` comment per metric
//! *family*, counters/gauges as single samples, and histograms as the
//! standard cumulative `_bucket{le="..."}` series with `_sum` and
//! `_count`. Metric names are sanitized to the Prometheus charset
//! (`[a-zA-Z0-9_:]`), so the registry's dotted names
//! (`mem.read_latency`) come out as `mem_read_latency`.
//!
//! Labeled series are plain registry entries whose name is the full
//! canonical key — build them with [`labeled`], which sanitizes the
//! family, validates label names, and escapes label values. The
//! renderer groups keys by family (the name up to the first `{`) so a
//! family's samples share one `# TYPE` header, as the format requires.
//!
//! Output is deterministic: families render in name order, and bucket
//! rows stop at the last non-empty bucket (the `+Inf` row always closes
//! the series), so exports diff cleanly between runs.
//!
//! [`check_exposition`] is the in-tree format checker: it validates the
//! line grammar, metric-name and label-name charsets, label escaping,
//! the `_total` suffix convention for counters, `# TYPE`-before-samples
//! ordering, and cumulative-bucket monotonicity — used as a library
//! test here and as a CI gate on the live `/metrics` endpoint.
//!
//! [`MetricsRegistry::describe`]: crate::metrics::MetricsRegistry::describe

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Maps a registry metric name onto the Prometheus charset: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is
/// prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value for the text format: backslash, double quote,
/// and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn sanitize_label_name(name: &str) -> String {
    // Label names exclude `:` (reserved for metric names).
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Builds the canonical registry key for a labeled series:
/// `family{k="v",...}` with the family sanitized, label names reduced to
/// `[a-zA-Z0-9_]`, and label values escaped. Register the series under
/// this key and the renderer groups it with its family.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    let mut out = sanitize_metric_name(family);
    if labels.is_empty() {
        return out;
    }
    out.push('{');
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}=\"{}\"",
            sanitize_label_name(name),
            escape_label_value(value)
        );
    }
    out.push('}');
    out
}

/// The family part of a (possibly labeled) registry key: the name up to
/// the first `{`.
pub fn metric_family(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Sanitizes the family part of a key, passing any `{...}` label suffix
/// through untouched (label syntax is produced by [`labeled`], which
/// already escaped it).
fn sanitize_key(key: &str) -> String {
    match key.find('{') {
        Some(brace) => {
            let mut out = sanitize_metric_name(&key[..brace]);
            out.push_str(&key[brace..]);
            out
        }
        None => sanitize_metric_name(key),
    }
}

fn emit_header(out: &mut String, snapshot: &MetricsSnapshot, raw_family: &str, kind: &str) {
    let family = sanitize_metric_name(metric_family(raw_family));
    if let Some(help) = snapshot.helps.get(metric_family(raw_family)) {
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(out, "# HELP {family} {help}");
    }
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

fn render_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let last_used = hist
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .unwrap_or(0)
        .min(HISTOGRAM_BUCKETS - 2);
    let mut cumulative = 0u64;
    for bucket in 0..=last_used {
        cumulative += hist.buckets[bucket];
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper_bound(bucket)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{name}_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_count {}", hist.count);
}

/// Groups keys of one metric section by family, preserving key order
/// within each family. Grouping (rather than relying on `BTreeMap`
/// adjacency) keeps a family's samples under one header even when an
/// unlabeled sibling name sorts between its labeled series.
fn group_by_family<'a, V>(
    entries: impl Iterator<Item = (&'a String, V)>,
) -> BTreeMap<String, Vec<(String, V)>> {
    let mut families: BTreeMap<String, Vec<(String, V)>> = BTreeMap::new();
    for (key, value) in entries {
        let sanitized = sanitize_key(key);
        families
            .entry(metric_family(&sanitized).to_string())
            .or_default()
            .push((sanitized, value));
    }
    families
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (family, samples) in group_by_family(snapshot.counters.iter().map(|(k, v)| (k, *v))) {
        emit_header(&mut out, snapshot, &family, "counter");
        for (key, value) in samples {
            let _ = writeln!(out, "{key} {value}");
        }
    }
    for (family, samples) in group_by_family(snapshot.gauges.iter().map(|(k, v)| (k, *v))) {
        emit_header(&mut out, snapshot, &family, "gauge");
        for (key, value) in samples {
            let _ = writeln!(out, "{key} {value}");
        }
    }
    for (name, hist) in &snapshot.histograms {
        let name = sanitize_key(name);
        emit_header(&mut out, snapshot, &name, "histogram");
        render_histogram(&mut out, &name, hist);
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{label="v",...} value`, validating name/label charsets and
/// escape sequences.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b' ' {
        i += 1;
    }
    let name = &line[..i];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err("unterminated label set".to_string());
            }
            if bytes[i] == b'}' {
                i += 1;
                break;
            }
            let start = i;
            while i < bytes.len() && bytes[i] != b'=' {
                i += 1;
            }
            let lname = &line[start..i];
            if !valid_label_name(lname) {
                return Err(format!("invalid label name {lname:?}"));
            }
            if i + 1 >= bytes.len() || bytes[i + 1] != b'"' {
                return Err(format!("label {lname:?}: expected '=\"'"));
            }
            i += 2;
            let mut value = String::new();
            loop {
                match bytes.get(i) {
                    None => return Err(format!("label {lname:?}: unterminated value")),
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => match bytes.get(i + 1) {
                        Some(b'\\') => {
                            value.push('\\');
                            i += 2;
                        }
                        Some(b'"') => {
                            value.push('"');
                            i += 2;
                        }
                        Some(b'n') => {
                            value.push('\n');
                            i += 2;
                        }
                        other => {
                            return Err(format!(
                                "label {lname:?}: invalid escape \\{}",
                                other.map(|&b| b as char).unwrap_or(' ')
                            ))
                        }
                    },
                    Some(_) => {
                        // Advance one whole UTF-8 character.
                        let c = line[i..].chars().next().unwrap();
                        value.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            labels.push((lname.to_string(), value));
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {}
                _ => return Err("expected ',' or '}' after label".to_string()),
            }
        }
    }
    let rest = line[i..].trim_start();
    if rest.is_empty() {
        return Err("missing sample value".to_string());
    }
    let value: f64 = rest
        .parse()
        .map_err(|_| format!("invalid sample value {rest:?}"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

#[derive(Default)]
struct BucketState {
    last: f64,
    inf: Option<f64>,
    count: Option<f64>,
}

/// Validates `text` against the Prometheus text exposition format plus
/// the repo's conventions. Checks, per line and per family:
///
/// - metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*` and label names
///   `[a-zA-Z_][a-zA-Z0-9_]*`, with only `\\`, `\"`, and `\n` escapes in
///   label values;
/// - every sample's family has a preceding `# TYPE` of a known kind, at
///   most one per family, and `# HELP` (optional) precedes it;
/// - counter families carry the `_total` suffix and never go negative;
/// - histogram families expose only `_bucket`/`_sum`/`_count` samples,
///   every `_bucket` has an `le` label, cumulative bucket values are
///   monotone non-decreasing, and the `+Inf` bucket equals `_count`.
///
/// Returns the first violation as `Err`, with its 1-based line number.
pub fn check_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, &str> = BTreeMap::new();
    let mut helps: BTreeMap<String, ()> = BTreeMap::new();
    let mut sampled: BTreeMap<String, ()> = BTreeMap::new();
    let mut buckets: BTreeMap<String, BucketState> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let fail = |msg: String| Err(format!("line {lineno}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            if !valid_metric_name(name) {
                return fail(format!("invalid metric name {name:?} in HELP"));
            }
            if help.is_empty() {
                return fail(format!("empty HELP text for {name}"));
            }
            if helps.insert(name.to_string(), ()).is_some() {
                return fail(format!("duplicate HELP for {name}"));
            }
            if types.contains_key(name) || sampled.contains_key(name) {
                return fail(format!("HELP for {name} after its TYPE or samples"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                return fail("TYPE line missing kind".to_string());
            };
            if !valid_metric_name(name) {
                return fail(format!("invalid metric name {name:?} in TYPE"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return fail(format!("unknown metric type {kind:?} for {name}"));
            }
            if sampled.contains_key(name) {
                return fail(format!("TYPE for {name} after its samples"));
            }
            if types.insert(name.to_string(), kind_static(kind)).is_some() {
                return fail(format!("duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let sample = match parse_sample(line) {
            Ok(sample) => sample,
            Err(msg) => return fail(msg),
        };
        // Resolve the sample to its family: an exact TYPE match, or a
        // histogram suffix.
        let (family, kind) = if let Some(kind) = types.get(&sample.name) {
            (sample.name.clone(), *kind)
        } else {
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| sample.name.strip_suffix(s))
                .unwrap_or(&sample.name);
            match types.get(base) {
                Some(&"histogram") => (base.to_string(), "histogram"),
                _ => return fail(format!("sample {} has no preceding # TYPE", sample.name)),
            }
        };
        sampled.insert(family.clone(), ());
        match kind {
            "counter" => {
                if !family.ends_with("_total") {
                    return fail(format!("counter {family} does not end with _total"));
                }
                if sample.value < 0.0 {
                    return fail(format!("counter {family} has negative value"));
                }
            }
            "gauge" => {}
            "histogram" => {
                let state = buckets.entry(family.clone()).or_default();
                if sample.name.ends_with("_bucket") {
                    let Some((_, le)) = sample.labels.iter().find(|(k, _)| k == "le") else {
                        return fail(format!("{}_bucket without an le label", family));
                    };
                    if sample.value < state.last {
                        return fail(format!(
                            "histogram {family} buckets not cumulative at le={le}"
                        ));
                    }
                    state.last = sample.value;
                    if le == "+Inf" {
                        state.inf = Some(sample.value);
                    } else if le.parse::<f64>().is_err() {
                        return fail(format!("histogram {family} has non-numeric le={le:?}"));
                    }
                } else if sample.name.ends_with("_count") {
                    state.count = Some(sample.value);
                } else if !sample.name.ends_with("_sum") {
                    return fail(format!(
                        "histogram {family} sample {} is not _bucket/_sum/_count",
                        sample.name
                    ));
                }
            }
            _ => unreachable!(),
        }
    }
    for (family, state) in &buckets {
        let Some(inf) = state.inf else {
            return Err(format!("histogram {family} has no +Inf bucket"));
        };
        match state.count {
            Some(count) if count == inf => {}
            Some(_) => {
                return Err(format!(
                    "histogram {family}: +Inf bucket disagrees with _count"
                ))
            }
            None => return Err(format!("histogram {family} has no _count sample")),
        }
    }
    Ok(())
}

fn kind_static(kind: &str) -> &'static str {
    match kind {
        "counter" => "counter",
        "gauge" => "gauge",
        _ => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_for, MetricsRegistry};

    #[test]
    fn sanitizes_dotted_and_leading_digit_names() {
        assert_eq!(sanitize_metric_name("mem.read_latency"), "mem_read_latency");
        assert_eq!(
            sanitize_metric_name("prof.dap-decision"),
            "prof_dap_decision"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        if !crate::enabled() {
            return;
        }
        let registry = MetricsRegistry::new();
        registry.counter("mem.demand_reads").add(7);
        registry.gauge("exec.cells_running").set(-2);
        let hist = registry.histogram("mem.read_latency");
        for v in [1u64, 2, 300] {
            hist.record(v);
        }
        let text = render_exposition(&registry.snapshot());
        assert!(text.contains("# TYPE mem_demand_reads counter\nmem_demand_reads 7\n"));
        assert!(text.contains("# TYPE exec_cells_running gauge\nexec_cells_running -2\n"));
        assert!(text.contains("# TYPE mem_read_latency histogram"));
        // Cumulative buckets: le="1" sees 1 sample, le="2" sees 2, the
        // bucket covering 300 sees all 3, and +Inf closes at the count.
        assert!(
            text.contains("mem_read_latency_bucket{le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("mem_read_latency_bucket{le=\"2\"} 2\n"),
            "{text}"
        );
        let upper = bucket_upper_bound(bucket_for(300));
        assert!(
            text.contains(&format!("mem_read_latency_bucket{{le=\"{upper}\"}} 3\n")),
            "{text}"
        );
        assert!(text.contains("mem_read_latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("mem_read_latency_sum 303\n"));
        assert!(text.contains("mem_read_latency_count 3\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_string() {
        let text = render_exposition(&MetricsSnapshot::default());
        assert!(text.is_empty());
    }

    #[test]
    fn overflow_bucket_never_gets_a_numeric_le_row() {
        // A sample in the overflow bucket must appear only in the +Inf
        // row: u64::MAX is not a meaningful numeric bucket bound.
        let mut snapshot = MetricsSnapshot::default();
        let mut buckets = [0u64; crate::metrics::HISTOGRAM_BUCKETS];
        buckets[crate::metrics::HISTOGRAM_BUCKETS - 1] = 1;
        snapshot.histograms.insert(
            "lat".to_string(),
            HistogramSnapshot {
                count: 1,
                sum: u64::MAX,
                buckets,
            },
        );
        let text = render_exposition(&snapshot);
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
    }

    #[test]
    fn labeled_builds_escaped_canonical_keys() {
        assert_eq!(labeled("hits_total", &[]), "hits_total");
        assert_eq!(
            labeled("hits_total", &[("backend", "hbm")]),
            "hits_total{backend=\"hbm\"}"
        );
        assert_eq!(
            labeled("mem.hits_total", &[("te nant", "a\"b\\c\nd")]),
            "mem_hits_total{te_nant=\"a\\\"b\\\\c\\nd\"}"
        );
        assert_eq!(metric_family("hits_total{backend=\"hbm\"}"), "hits_total");
        assert_eq!(metric_family("hits_total"), "hits_total");
    }

    #[test]
    fn labeled_series_share_one_family_header() {
        if !crate::enabled() {
            return;
        }
        let registry = MetricsRegistry::new();
        registry.describe("served_total", "Requests served per backend.");
        registry
            .counter(&labeled("served_total", &[("backend", "hbm")]))
            .add(3);
        registry
            .counter(&labeled("served_total", &[("backend", "ddr4")]))
            .add(1);
        // An unlabeled sibling that sorts *between* the family name and
        // its labeled keys must not split the group.
        registry.counter("served_totals_total").add(9);
        let text = render_exposition(&registry.snapshot());
        assert_eq!(text.matches("# TYPE served_total counter").count(), 1);
        assert!(text.contains(
            "# HELP served_total Requests served per backend.\n\
             # TYPE served_total counter\n\
             served_total{backend=\"ddr4\"} 1\n\
             served_total{backend=\"hbm\"} 3\n"
        ));
        check_exposition(&text).unwrap();
    }

    #[test]
    fn renderer_output_passes_the_checker() {
        if !crate::enabled() {
            return;
        }
        let registry = MetricsRegistry::new();
        registry.describe("hits_total", "Cache hits.");
        registry.counter("hits_total").add(2);
        registry
            .counter(&labeled("req_total", &[("tenant", "a\"b")]))
            .incr();
        registry.gauge("depth").set(-4);
        let hist = registry.histogram("lat_ns");
        for v in [0u64, 3, 900, u64::MAX] {
            hist.record(v);
        }
        let text = render_exposition(&registry.snapshot());
        check_exposition(&text).unwrap();
        assert!(text.contains("# HELP hits_total Cache hits.\n"));
    }

    #[test]
    fn checker_rejects_format_violations() {
        // Sample with no TYPE.
        assert!(check_exposition("x_total 1\n").is_err());
        // Counter without the _total suffix.
        assert!(check_exposition("# TYPE x counter\nx 1\n").is_err());
        // Negative counter.
        assert!(check_exposition("# TYPE x_total counter\nx_total -1\n").is_err());
        // Invalid metric name.
        assert!(check_exposition("# TYPE 9x_total counter\n9x_total 1\n").is_err());
        // Bad escape in a label value.
        assert!(check_exposition("# TYPE x_total counter\nx_total{a=\"b\\q\"} 1\n").is_err());
        // Unterminated label set.
        assert!(check_exposition("# TYPE x_total counter\nx_total{a=\"b\" 1\n").is_err());
        // Duplicate TYPE.
        assert!(check_exposition("# TYPE x gauge\n# TYPE x gauge\nx 1\n").is_err());
        // HELP after samples.
        assert!(check_exposition("# TYPE x gauge\nx 1\n# HELP x late\n").is_err());
        // Non-cumulative histogram buckets.
        assert!(check_exposition(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n\
             h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
        )
        .is_err());
        // Histogram whose +Inf disagrees with _count.
        assert!(check_exposition(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3\n"
        )
        .is_err());
        // Histogram missing +Inf entirely.
        assert!(
            check_exposition("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 3\nh_count 2\n")
                .is_err()
        );
        // Missing value.
        assert!(check_exposition("# TYPE x gauge\nx\n").is_err());
        // Garbage value.
        assert!(check_exposition("# TYPE x gauge\nx pancake\n").is_err());
    }

    #[test]
    fn checker_accepts_gauges_labels_and_comments() {
        check_exposition(
            "# scraped from dapd\n\
             # HELP depth Queue depth.\n\
             # TYPE depth gauge\n\
             depth -3\n\
             # TYPE served_total counter\n\
             served_total{backend=\"hbm\",tenant=\"a\\\"b\"} 12\n\
             served_total{backend=\"ddr4\"} 3\n",
        )
        .unwrap();
    }
}
