//! Human-readable digest of a window trace.
//!
//! The JSONL/CSV artifacts are for machines; [`summarize`] renders the
//! same trace as a few lines a person can read in a terminal — window
//! counts, how often the controller actually partitioned, total technique
//! credits granted vs. applied, and how close the solved fractions sat to
//! the Eq. 4 bandwidth-proportional ideal.

use std::fmt::Write as _;

use dap_core::{ProfileWindow, TechniqueCounts};

use crate::export::{RecoveredWindowTrace, TraceMeta};
use crate::metrics::MetricsSnapshot;
use crate::window::WindowTrace;

fn accumulate(into: &mut TechniqueCounts, from: &TechniqueCounts) {
    into.fwb += from.fwb;
    into.wb += from.wb;
    into.ifrm += from.ifrm;
    into.sfrm += from.sfrm;
    into.write_through += from.write_through;
}

fn technique_line(counts: &TechniqueCounts) -> String {
    format!(
        "FWB {}  WB {}  IFRM {}  SFRM {}  WT {}  (total {})",
        counts.fwb,
        counts.wb,
        counts.ifrm,
        counts.sfrm,
        counts.write_through,
        counts.total()
    )
}

/// Renders a multi-line human summary of `trace`.
pub fn summarize(meta: &TraceMeta, trace: &WindowTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run {} ({}, W={} cycles)",
        if meta.label.is_empty() {
            "<unlabelled>"
        } else {
            &meta.label
        },
        if meta.arch.is_empty() {
            "unknown arch"
        } else {
            &meta.arch
        },
        meta.window_cycles
    );
    let retained = trace.records.len() as u64;
    let _ = writeln!(
        out,
        "windows: {} observed ({retained} retained, {} spilled, {} dropped)",
        trace.windows_observed(),
        trace.spilled,
        trace.dropped
    );
    if trace.records.is_empty() {
        out.push_str("no retained windows.\n");
        return out;
    }

    let partitioned = trace.records.iter().filter(|r| r.partitioned).count();
    let _ = writeln!(
        out,
        "partitioned windows: {partitioned}/{retained} ({:.1}%)",
        100.0 * partitioned as f64 / retained as f64
    );

    let mut granted = TechniqueCounts::default();
    let mut applied = TechniqueCounts::default();
    for record in &trace.records {
        accumulate(&mut granted, &record.granted);
        accumulate(&mut applied, &record.applied);
    }
    let _ = writeln!(out, "credits granted: {}", technique_line(&granted));
    let _ = writeln!(out, "credits applied: {}", technique_line(&applied));
    if granted.total() > 0 {
        let _ = writeln!(
            out,
            "credit utilization: {:.1}%",
            100.0 * applied.total() as f64 / granted.total() as f64
        );
    }

    let deviations: Vec<f64> = trace
        .records
        .iter()
        .map(|r| r.fractions.max_deviation())
        .collect();
    let mean = deviations.iter().sum::<f64>() / deviations.len() as f64;
    let max = deviations.iter().copied().fold(0.0, f64::max);
    let _ = writeln!(out, "|f - ideal| deviation: mean {mean:.4}, max {max:.4}");

    let traffic: u64 = trace
        .records
        .iter()
        .map(|r| u64::from(r.stats.cache_accesses) + u64::from(r.stats.mm_accesses))
        .sum();
    let _ = writeln!(
        out,
        "traffic: {traffic} accesses over {retained} retained windows ({:.2}/window)",
        traffic as f64 / retained as f64
    );
    out
}

/// Renders a metrics snapshot as human-readable tables: counters with
/// their totals, and histograms with count, mean, and the p50/p90/p99/
/// p999 percentile columns (bucket upper bounds — see
/// [`crate::percentile`]). Empty histograms render `-` in every
/// percentile column instead of fabricating zeros.
pub fn summarize_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if snapshot.counters.is_empty() && snapshot.gauges.is_empty() && snapshot.histograms.is_empty()
    {
        out.push_str("no metrics recorded.\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<28} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<28} {value:>12}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms:\n  {:<28} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "name", "count", "mean", "p50", "p90", "p99", "p999"
        );
        for (name, hist) in &snapshot.histograms {
            let mean = hist
                .mean()
                .map_or_else(|| "-".to_string(), |m| format!("{m:.1}"));
            let (p50, p90, p99, p999) = match hist.percentiles() {
                Some(p) => (
                    p.p50.to_string(),
                    p.p90.to_string(),
                    p.p99.to_string(),
                    p.p999.to_string(),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            let _ = writeln!(
                out,
                "  {name:<28} {:>10} {mean:>10} {p50:>8} {p90:>8} {p99:>8} {p999:>8}",
                hist.count
            );
        }
    }
    out
}

/// Renders the profiler's per-window cycle-attribution rollups as a
/// short digest: total sampled accesses and grants, and the mean
/// cache-queue / main-memory-queue wait per sampled access over the
/// first and last quarter of the windows — the queue-wait shift the
/// paper's Sec. III predicts when DAP activates shows up as the cache
/// wait collapsing between the two.
pub fn summarize_profile_windows(windows: &[ProfileWindow]) -> String {
    let mut out = String::new();
    if windows.is_empty() {
        out.push_str("profile: no sampled windows.\n");
        return out;
    }
    let samples: u64 = windows.iter().map(|w| w.samples).sum();
    let grants: u64 = windows.iter().map(|w| w.grants).sum();
    let _ = writeln!(
        out,
        "profile: {samples} sampled accesses over {} windows, {grants} DAP-granted",
        windows.len()
    );
    let quarter = (windows.len() / 4).max(1);
    let mean_waits = |slice: &[ProfileWindow]| -> Option<(f64, f64)> {
        let n: u64 = slice.iter().map(|w| w.samples).sum();
        if n == 0 {
            return None;
        }
        let cache: u64 = slice.iter().map(|w| w.cache_queue_wait).sum();
        let mm: u64 = slice.iter().map(|w| w.mm_queue_wait).sum();
        Some((cache as f64 / n as f64, mm as f64 / n as f64))
    };
    let early = mean_waits(&windows[..quarter]);
    let late = mean_waits(&windows[windows.len() - quarter..]);
    if let (Some((ec, em)), Some((lc, lm))) = (early, late) {
        let _ = writeln!(
            out,
            "queue wait per sampled access (cycles): cache {ec:.1} -> {lc:.1}, mm {em:.1} -> {lm:.1} \
             (first vs last quarter of windows)"
        );
    }
    out
}

/// Renders the summary of a leniently-read artifact, appending the count
/// of corrupt lines that were skipped (when any were).
pub fn summarize_recovered(recovered: &RecoveredWindowTrace) -> String {
    let mut out = summarize(&recovered.meta, &recovered.trace);
    if recovered.parse_errors > 0 {
        let _ = writeln!(
            out,
            "parse_errors: {} corrupt record line(s) skipped",
            recovered.parse_errors
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::telemetry::sectored_fractions;
    use dap_core::{Ratio, SectoredPlan, WindowSnapshot, WindowStats};

    #[test]
    fn summary_reports_counts_and_deviation() {
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            ..Default::default()
        };
        let records = vec![WindowSnapshot {
            window_index: 0,
            end_cycle: 64,
            stats,
            partitioned: true,
            granted: TechniqueCounts {
                fwb: 5,
                wb: 2,
                ifrm: 1,
                sfrm: 0,
                write_through: 0,
            },
            applied: TechniqueCounts {
                fwb: 4,
                wb: 2,
                ifrm: 0,
                sfrm: 0,
                write_through: 0,
            },
            fractions: sectored_fractions(&stats, &SectoredPlan::default(), Ratio::new(11, 4)),
        }];
        let meta = TraceMeta {
            label: "dap/mix03".to_string(),
            arch: "sectored".to_string(),
            window_cycles: 64,
        };
        let trace = WindowTrace {
            records,
            spilled: 0,
            dropped: 0,
        };
        let text = summarize(&meta, &trace);
        assert!(text.contains("dap/mix03"), "{text}");
        assert!(text.contains("partitioned windows: 1/1"), "{text}");
        assert!(text.contains("FWB 5"), "{text}");
        assert!(text.contains("credit utilization: 75.0%"), "{text}");
        assert!(text.contains("|f - ideal|"), "{text}");
    }

    #[test]
    fn empty_trace_summarizes_without_panicking() {
        let text = summarize(&TraceMeta::default(), &WindowTrace::default());
        assert!(text.contains("no retained windows"), "{text}");
    }

    #[test]
    fn metrics_summary_shows_percentile_columns() {
        if !crate::enabled() {
            return;
        }
        let registry = crate::MetricsRegistry::new();
        registry.counter("mem.demand_reads").add(42);
        let hist = registry.histogram("prof.cache_queue_wait");
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 200] {
            hist.record(v);
        }
        registry.histogram("prof.mm_queue_wait"); // registered but empty
        let text = summarize_metrics(&registry.snapshot());
        assert!(text.contains("mem.demand_reads"), "{text}");
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p999"), "{text}");
        assert!(text.contains("prof.cache_queue_wait"), "{text}");
        // Empty histograms show the `-` sentinel, never a fabricated 0.
        let empty_row = text
            .lines()
            .find(|l| l.contains("prof.mm_queue_wait"))
            .expect("row for empty histogram");
        assert!(empty_row.contains('-'), "{empty_row}");
    }

    #[test]
    fn empty_metrics_summary_says_so() {
        let text = summarize_metrics(&crate::MetricsSnapshot::default());
        assert!(text.contains("no metrics recorded"), "{text}");
    }

    #[test]
    fn profile_window_digest_shows_queue_shift() {
        let early = ProfileWindow {
            window_index: 0,
            samples: 10,
            grants: 0,
            cache_queue_wait: 1000,
            mm_queue_wait: 50,
            ..Default::default()
        };
        let late = ProfileWindow {
            window_index: 9,
            samples: 10,
            grants: 6,
            cache_queue_wait: 100,
            mm_queue_wait: 120,
            ..Default::default()
        };
        let windows = [early, early, early, early, late, late, late, late];
        let text = summarize_profile_windows(&windows);
        assert!(text.contains("80 sampled accesses"), "{text}");
        assert!(text.contains("24 DAP-granted"), "{text}");
        assert!(text.contains("cache 100.0 -> 10.0"), "{text}");
        assert!(summarize_profile_windows(&[]).contains("no sampled windows"));
    }
}
