//! Human-readable digest of a window trace.
//!
//! The JSONL/CSV artifacts are for machines; [`summarize`] renders the
//! same trace as a few lines a person can read in a terminal — window
//! counts, how often the controller actually partitioned, total technique
//! credits granted vs. applied, and how close the solved fractions sat to
//! the Eq. 4 bandwidth-proportional ideal.

use std::fmt::Write as _;

use dap_core::TechniqueCounts;

use crate::export::{RecoveredWindowTrace, TraceMeta};
use crate::window::WindowTrace;

fn accumulate(into: &mut TechniqueCounts, from: &TechniqueCounts) {
    into.fwb += from.fwb;
    into.wb += from.wb;
    into.ifrm += from.ifrm;
    into.sfrm += from.sfrm;
    into.write_through += from.write_through;
}

fn technique_line(counts: &TechniqueCounts) -> String {
    format!(
        "FWB {}  WB {}  IFRM {}  SFRM {}  WT {}  (total {})",
        counts.fwb,
        counts.wb,
        counts.ifrm,
        counts.sfrm,
        counts.write_through,
        counts.total()
    )
}

/// Renders a multi-line human summary of `trace`.
pub fn summarize(meta: &TraceMeta, trace: &WindowTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run {} ({}, W={} cycles)",
        if meta.label.is_empty() {
            "<unlabelled>"
        } else {
            &meta.label
        },
        if meta.arch.is_empty() {
            "unknown arch"
        } else {
            &meta.arch
        },
        meta.window_cycles
    );
    let retained = trace.records.len() as u64;
    let _ = writeln!(
        out,
        "windows: {} observed ({retained} retained, {} spilled, {} dropped)",
        trace.windows_observed(),
        trace.spilled,
        trace.dropped
    );
    if trace.records.is_empty() {
        out.push_str("no retained windows.\n");
        return out;
    }

    let partitioned = trace.records.iter().filter(|r| r.partitioned).count();
    let _ = writeln!(
        out,
        "partitioned windows: {partitioned}/{retained} ({:.1}%)",
        100.0 * partitioned as f64 / retained as f64
    );

    let mut granted = TechniqueCounts::default();
    let mut applied = TechniqueCounts::default();
    for record in &trace.records {
        accumulate(&mut granted, &record.granted);
        accumulate(&mut applied, &record.applied);
    }
    let _ = writeln!(out, "credits granted: {}", technique_line(&granted));
    let _ = writeln!(out, "credits applied: {}", technique_line(&applied));
    if granted.total() > 0 {
        let _ = writeln!(
            out,
            "credit utilization: {:.1}%",
            100.0 * applied.total() as f64 / granted.total() as f64
        );
    }

    let deviations: Vec<f64> = trace
        .records
        .iter()
        .map(|r| r.fractions.max_deviation())
        .collect();
    let mean = deviations.iter().sum::<f64>() / deviations.len() as f64;
    let max = deviations.iter().copied().fold(0.0, f64::max);
    let _ = writeln!(out, "|f - ideal| deviation: mean {mean:.4}, max {max:.4}");

    let traffic: u64 = trace
        .records
        .iter()
        .map(|r| u64::from(r.stats.cache_accesses) + u64::from(r.stats.mm_accesses))
        .sum();
    let _ = writeln!(
        out,
        "traffic: {traffic} accesses over {retained} retained windows ({:.2}/window)",
        traffic as f64 / retained as f64
    );
    out
}

/// Renders the summary of a leniently-read artifact, appending the count
/// of corrupt lines that were skipped (when any were).
pub fn summarize_recovered(recovered: &RecoveredWindowTrace) -> String {
    let mut out = summarize(&recovered.meta, &recovered.trace);
    if recovered.parse_errors > 0 {
        let _ = writeln!(
            out,
            "parse_errors: {} corrupt record line(s) skipped",
            recovered.parse_errors
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::telemetry::sectored_fractions;
    use dap_core::{Ratio, SectoredPlan, WindowSnapshot, WindowStats};

    #[test]
    fn summary_reports_counts_and_deviation() {
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            ..Default::default()
        };
        let records = vec![WindowSnapshot {
            window_index: 0,
            end_cycle: 64,
            stats,
            partitioned: true,
            granted: TechniqueCounts {
                fwb: 5,
                wb: 2,
                ifrm: 1,
                sfrm: 0,
                write_through: 0,
            },
            applied: TechniqueCounts {
                fwb: 4,
                wb: 2,
                ifrm: 0,
                sfrm: 0,
                write_through: 0,
            },
            fractions: sectored_fractions(&stats, &SectoredPlan::default(), Ratio::new(11, 4)),
        }];
        let meta = TraceMeta {
            label: "dap/mix03".to_string(),
            arch: "sectored".to_string(),
            window_cycles: 64,
        };
        let trace = WindowTrace {
            records,
            spilled: 0,
            dropped: 0,
        };
        let text = summarize(&meta, &trace);
        assert!(text.contains("dap/mix03"), "{text}");
        assert!(text.contains("partitioned windows: 1/1"), "{text}");
        assert!(text.contains("FWB 5"), "{text}");
        assert!(text.contains("credit utilization: 75.0%"), "{text}");
        assert!(text.contains("|f - ideal|"), "{text}");
    }

    #[test]
    fn empty_trace_summarizes_without_panicking() {
        let text = summarize(&TraceMeta::default(), &WindowTrace::default());
        assert!(text.contains("no retained windows"), "{text}");
    }
}
