//! Sharded atomic metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Hot-path cost is a single relaxed atomic add on a cache-line-padded
//! shard, so instrumentation can stay enabled in release experiment runs.
//! Under the `telemetry-off` feature every record path compiles to a
//! no-op (the types remain, so callers need no `cfg` of their own).
//!
//! Reads ([`Counter::value`], [`Histogram::bucket_counts`],
//! [`MetricsRegistry::snapshot`]) sum across shards; they are intended
//! for end-of-run export, not the hot path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent cache-line-padded shards per counter/histogram.
///
/// Eight shards comfortably cover the worker-thread counts the experiment
/// executor uses while keeping per-metric memory at 8 × 64 B.
pub const SHARDS: usize = 8;

/// Number of buckets in a [`Histogram`].
///
/// Bucket `i < 31` counts samples in `[2^(i-1)+1, 2^i]` (bucket 0 counts
/// zeros and ones); bucket 31 is the overflow bucket for samples above
/// `2^30`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// One cache line's worth of atomic counter, padded to avoid false sharing
/// between shards updated by different worker threads.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[cfg(not(feature = "telemetry-off"))]
fn shard_index() -> usize {
    // Thread-local round-robin-free shard choice: hash the thread id once
    // and cache it, so each thread always lands on the same shard.
    thread_local! {
        static SHARD: usize = {
            use std::collections::hash_map::RandomState;
            use std::hash::BuildHasher;
            (RandomState::new().hash_one(std::thread::current().id()) as usize) % SHARDS
        };
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing sum, sharded across [`SHARDS`] padded
/// atomics. Cloning is cheap and shares the underlying shards.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.shards[shard_index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = delta;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all shards (end-of-run read, not hot path).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed last-value metric (e.g. current queue depth). Unsharded: gauges
/// record a momentary level, not a sum, so the last writer wins.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.store(value, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = value;
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = delta;
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistogramShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-memory power-of-two histogram for latencies and occupancies.
///
/// Values are assigned to [`HISTOGRAM_BUCKETS`] buckets by bit width, so
/// recording costs three relaxed atomic adds and no allocation; memory is
/// fixed regardless of sample count. Cloning shares the underlying shards.
#[derive(Clone, Default)]
pub struct Histogram {
    shards: Arc<[HistogramShard; SHARDS]>,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Maps a sample to its bucket: 0..=1 → 0, otherwise `ceil(log2(v))`,
/// saturating into the final overflow bucket.
pub fn bucket_for(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        let bits = 64 - (value - 1).leading_zeros() as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of `bucket` (`u64::MAX` for the overflow bucket).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        1
    } else if bucket >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << bucket
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let shard = &self.shards[shard_index()];
            shard.buckets[bucket_for(value)].fetch_add(1, Ordering::Relaxed);
            shard.count.fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = value;
    }

    /// Folds pre-aggregated samples in: per-bucket counts plus their
    /// total count and value sum. This is the bulk path for
    /// single-threaded recorders that accumulate locally (plain integer
    /// adds) and publish once per run instead of paying atomic traffic
    /// per sample.
    pub fn add_bucketed(&self, buckets: &[u64; HISTOGRAM_BUCKETS], count: u64, sum: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let shard = &self.shards[shard_index()];
            for (slot, &c) in shard.buckets.iter().zip(buckets.iter()) {
                if c > 0 {
                    slot.fetch_add(c, Ordering::Relaxed);
                }
            }
            shard.count.fetch_add(count, Ordering::Relaxed);
            shard.sum.fetch_add(sum, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (buckets, count, sum);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            None
        } else {
            Some(self.sum() as f64 / count as f64)
        }
    }

    /// Per-bucket sample counts, summed across shards.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for shard in self.shards.iter() {
            for (slot, bucket) in out.iter_mut().zip(shard.buckets.iter()) {
                *slot += bucket.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Smallest bucket upper bound covering at least `q` (in `[0,1]`) of
    /// the samples, or `None` if the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    helps: BTreeMap<String, String>,
}

/// Locks the registry, recovering from poisoning: the maps hold only
/// atomic-backed handles, consistent after any interrupted mutation, so
/// a panicked experiment thread must not take metrics down with it.
fn lock_registry(inner: &Mutex<RegistryInner>) -> std::sync::MutexGuard<'_, RegistryInner> {
    inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A named collection of metrics, shared across threads by cloning.
///
/// Lookup takes a mutex, so instruments should be fetched once (at
/// attach/setup time) and the returned handles — which share state with
/// the registry — used on the hot path.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = lock_registry(&self.inner);
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = lock_registry(&self.inner);
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = lock_registry(&self.inner);
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = lock_registry(&self.inner);
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers a `# HELP` line for the metric *family* `name` (the
    /// metric name without any `{label="..."}` suffix). The exposition
    /// renderer emits the help text once, before the family's `# TYPE`
    /// line; families without a registered help render without one.
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = lock_registry(&self.inner);
        inner.helps.insert(name.to_string(), help.to_string());
    }

    /// Captures a point-in-time, deterministically ordered snapshot of
    /// every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_registry(&self.inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: v.count(),
                            sum: v.sum(),
                            buckets: v.bucket_counts(),
                        },
                    )
                })
                .collect(),
            helps: inner.helps.clone(),
        }
    }
}

/// Frozen values of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Per-bucket counts (see [`bucket_upper_bound`] for bucket edges).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A point-in-time copy of a registry's metrics, ordered by name so that
/// exports are deterministic. Snapshots from per-variant registries can be
/// [`merge`](MetricsSnapshot::merge)d into one run-level artifact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// `# HELP` text by metric family name (see
    /// [`MetricsRegistry::describe`]).
    pub helps: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges take `other`'s value (last writer wins).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            let slot = self
                .histograms
                .entry(name.clone())
                .or_insert_with(|| HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    buckets: [0; HISTOGRAM_BUCKETS],
                });
            slot.count += hist.count;
            slot.sum = slot.sum.wrapping_add(hist.sum);
            for (a, b) in slot.buckets.iter_mut().zip(hist.buckets.iter()) {
                *a += b;
            }
        }
        for (name, help) in &other.helps {
            self.helps
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_fold_matches_per_sample_recording() {
        let per_sample = Histogram::new();
        let bulk = Histogram::new();
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let (mut count, mut sum) = (0u64, 0u64);
        for v in [0, 1, 2, 3, 100, 5000, u64::MAX] {
            per_sample.record(v);
            buckets[bucket_for(v)] += 1;
            count += 1;
            sum = sum.wrapping_add(v);
        }
        bulk.add_bucketed(&buckets, count, sum);
        assert_eq!(per_sample.bucket_counts(), bulk.bucket_counts());
        assert_eq!(per_sample.count(), bulk.count());
        assert_eq!(per_sample.sum(), bulk.sum());
    }

    #[test]
    fn counter_sums_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        if crate::enabled() {
            assert_eq!(counter.value(), 4000);
        } else {
            assert_eq!(counter.value(), 0);
        }
    }

    #[test]
    fn gauge_tracks_last_value() {
        let gauge = Gauge::new();
        gauge.set(7);
        gauge.add(-3);
        if crate::enabled() {
            assert_eq!(gauge.value(), 4);
        } else {
            assert_eq!(gauge.value(), 0);
        }
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 2);
        assert_eq!(bucket_for(5), 3);
        assert_eq!(bucket_for(1 << 10), 10);
        assert_eq!(bucket_for((1 << 10) + 1), 11);
        assert_eq!(bucket_for(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every representable value lands in the bucket whose upper bound
        // covers it.
        for v in [0u64, 1, 2, 3, 100, 4096, 1 << 20, 1 << 40] {
            assert!(v <= bucket_upper_bound(bucket_for(v)));
        }
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let hist = Histogram::new();
        if !crate::enabled() {
            hist.record(10);
            assert_eq!(hist.count(), 0);
            return;
        }
        for v in [1u64, 2, 4, 8, 1000] {
            hist.record(v);
        }
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.sum(), 1015);
        assert!((hist.mean().unwrap() - 203.0).abs() < 1e-9);
        // The median sample (4) lives in the bucket with upper bound 4.
        assert_eq!(hist.quantile_upper_bound(0.5), Some(4));
        assert_eq!(hist.quantile_upper_bound(1.0), Some(1024));
    }

    #[test]
    fn registry_snapshot_merge() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("hits").add(3);
        b.counter("hits").add(4);
        b.counter("misses").add(1);
        a.histogram("lat").record(8);
        b.histogram("lat").record(8);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        if crate::enabled() {
            assert_eq!(merged.counters["hits"], 7);
            assert_eq!(merged.counters["misses"], 1);
            assert_eq!(merged.histograms["lat"].count, 2);
        } else {
            assert_eq!(merged.counters["hits"], 0);
        }
    }

    #[test]
    fn registry_returns_shared_handles() {
        let registry = MetricsRegistry::new();
        let first = registry.counter("x");
        let second = registry.counter("x");
        first.add(2);
        assert_eq!(second.value(), first.value());
    }
}
