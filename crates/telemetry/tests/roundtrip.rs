//! End-to-end artifact round trip: drive a real `DapController` with a
//! recorder attached, export the trace as JSONL and CSV, parse both back,
//! and assert the paper's invariants hold on every record.

use std::fs;
use std::sync::Arc;

use dap_core::{DapConfig, DapController, Technique};
use dap_telemetry::export::{
    read_window_trace_csv, read_window_trace_jsonl, write_window_trace_csv,
    write_window_trace_jsonl, TraceMeta,
};
use dap_telemetry::window::WindowTraceRecorder;

const WINDOWS: u64 = 200;

/// Runs a controller for `WINDOWS` windows of synthetic traffic and
/// returns the recorder's trace.
fn drive_controller() -> (DapController, Arc<WindowTraceRecorder>) {
    let mut dap = DapController::new(DapConfig::hbm_ddr4());
    let recorder = Arc::new(WindowTraceRecorder::new(4096));
    dap.attach_sink(recorder.clone());
    let w = u64::from(dap.config().window_cycles);
    for window in 0..WINDOWS {
        // Alternate pressured and calm windows so the trace contains both
        // partitioned and idle boundaries.
        if window % 3 != 2 {
            for _ in 0..40 {
                dap.note_cache_access(false);
            }
            for _ in 0..6 {
                dap.note_read_miss();
            }
            for _ in 0..10 {
                dap.note_write();
            }
            for _ in 0..12 {
                dap.note_clean_read_hit();
            }
            dap.note_mm_access();
            dap.note_mm_access();
        }
        dap.tick((window + 1) * w);
        // Spend some of the granted credits so `applied` is non-trivial.
        dap.try_apply(Technique::FillWriteBypass);
        dap.try_apply(Technique::WriteBypass);
    }
    (dap, recorder)
}

#[test]
fn jsonl_and_csv_round_trip_preserve_invariants() {
    if !dap_telemetry::enabled() {
        return; // telemetry-off builds record nothing, by design.
    }
    let (dap, recorder) = drive_controller();
    let trace = recorder.take();
    let meta = TraceMeta {
        label: "roundtrip/hbm-ddr4".to_string(),
        arch: "sectored".to_string(),
        window_cycles: dap.config().window_cycles,
    };

    // Window count must equal elapsed cycles / W, with nothing lost.
    assert_eq!(trace.records.len() as u64, WINDOWS);
    assert_eq!(trace.windows_observed(), WINDOWS);
    assert_eq!(trace.spilled + trace.dropped, 0);

    let dir = std::env::temp_dir().join(format!(
        "dap-roundtrip-{}-{}",
        std::process::id(),
        "artifacts"
    ));
    let _ = fs::remove_dir_all(&dir);
    let jsonl_path = dir.join("runs/trace.jsonl");
    let csv_path = dir.join("runs/trace.csv");
    write_window_trace_jsonl(&jsonl_path, &meta, &trace).expect("jsonl export");
    write_window_trace_csv(&csv_path, &meta, &trace).expect("csv export");

    let (meta_back, jsonl_back) = read_window_trace_jsonl(&jsonl_path).expect("jsonl parse");
    let csv_back = read_window_trace_csv(&csv_path).expect("csv parse");
    let _ = fs::remove_dir_all(&dir);

    assert_eq!(meta_back, meta);
    assert_eq!(jsonl_back.records, trace.records, "JSONL must be lossless");
    assert_eq!(csv_back, trace.records, "CSV must be lossless");

    let w = u64::from(meta.window_cycles);
    let mut saw_partitioned = false;
    let mut saw_applied = false;
    for (i, record) in jsonl_back.records.iter().enumerate() {
        let i = i as u64;
        assert_eq!(record.window_index, i);
        assert_eq!(record.end_cycle, (i + 1) * w, "boundaries align to W");

        let sources = usize::from(record.fractions.sources);
        assert_eq!(sources, 2, "HBM+DDR4 has two bandwidth sources");
        let solved_sum: f64 = record.fractions.solved[..sources].iter().sum();
        let ideal_sum: f64 = record.fractions.ideal[..sources].iter().sum();
        assert!(
            (solved_sum - 1.0).abs() < 1e-9,
            "window {i}: Σ f_i = {solved_sum}"
        );
        assert!((ideal_sum - 1.0).abs() < 1e-9);
        for f in &record.fractions.solved[..sources] {
            assert!((0.0..=1.0).contains(f), "window {i}: f = {f}");
        }
        for f in &record.fractions.ideal[..sources] {
            assert!((0.0..=1.0).contains(f));
        }

        // Applied credits can never exceed what the *previous* boundary
        // granted; the cheap always-true invariant is that both stay
        // within the per-window budget scale.
        assert!(record.granted.total() <= u64::from(u32::MAX));
        saw_partitioned |= record.partitioned;
        saw_applied |= record.applied.total() > 0;
    }
    assert!(
        saw_partitioned,
        "pressured windows must trigger partitioning"
    );
    assert!(
        saw_applied,
        "consumed credits must show up as applied counts"
    );

    // The controller's lifetime totals must equal the sum of per-window
    // applied counts — the trace is a complete decomposition.
    let applied_fwb: u64 = jsonl_back
        .records
        .iter()
        .map(|r| u64::from(r.applied.fwb))
        .sum();
    let applied_wb: u64 = jsonl_back
        .records
        .iter()
        .map(|r| u64::from(r.applied.wb))
        .sum();
    // Credits applied after the last boundary are not yet in any window;
    // this harness applies credits after each tick, so totals can exceed
    // the trace by at most one window's worth.
    assert!(dap.decisions().fwb >= applied_fwb);
    assert!(dap.decisions().wb >= applied_wb);
    assert!(dap.decisions().fwb - applied_fwb <= 1);
    assert!(dap.decisions().wb - applied_wb <= 1);
}

#[test]
fn summary_renders_for_a_real_trace() {
    if !dap_telemetry::enabled() {
        return;
    }
    let (dap, recorder) = drive_controller();
    let trace = recorder.take();
    let meta = TraceMeta {
        label: "summary/hbm-ddr4".to_string(),
        arch: "sectored".to_string(),
        window_cycles: dap.config().window_cycles,
    };
    let text = dap_telemetry::summarize(&meta, &trace);
    assert!(text.contains("summary/hbm-ddr4"), "{text}");
    assert!(text.contains(&format!("{WINDOWS} observed")), "{text}");
    assert!(text.contains("partitioned windows:"), "{text}");
}
