//! End-to-end artifact round trip: drive a real `DapController` with a
//! recorder attached, export the trace as JSONL and CSV, parse both back,
//! and assert the paper's invariants hold on every record.

use std::fs;
use std::sync::Arc;

use dap_core::{DapConfig, DapController, Technique};
use dap_telemetry::export::{
    read_window_trace_csv, read_window_trace_csv_lenient, read_window_trace_jsonl,
    read_window_trace_jsonl_lenient, write_window_trace_csv, write_window_trace_jsonl, TraceMeta,
};
use dap_telemetry::window::WindowTraceRecorder;

const WINDOWS: u64 = 200;

/// Runs a controller for `WINDOWS` windows of synthetic traffic and
/// returns the recorder's trace.
fn drive_controller() -> (DapController, Arc<WindowTraceRecorder>) {
    let mut dap = DapController::new(DapConfig::hbm_ddr4());
    let recorder = Arc::new(WindowTraceRecorder::new(4096));
    dap.attach_sink(recorder.clone());
    let w = u64::from(dap.config().window_cycles);
    for window in 0..WINDOWS {
        // Alternate pressured and calm windows so the trace contains both
        // partitioned and idle boundaries.
        if window % 3 != 2 {
            for _ in 0..40 {
                dap.note_cache_access(false);
            }
            for _ in 0..6 {
                dap.note_read_miss();
            }
            for _ in 0..10 {
                dap.note_write();
            }
            for _ in 0..12 {
                dap.note_clean_read_hit();
            }
            dap.note_mm_access();
            dap.note_mm_access();
        }
        dap.tick((window + 1) * w);
        // Spend some of the granted credits so `applied` is non-trivial.
        dap.try_apply(Technique::FillWriteBypass);
        dap.try_apply(Technique::WriteBypass);
    }
    (dap, recorder)
}

#[test]
fn jsonl_and_csv_round_trip_preserve_invariants() {
    if !dap_telemetry::enabled() {
        return; // telemetry-off builds record nothing, by design.
    }
    let (dap, recorder) = drive_controller();
    let trace = recorder.take();
    let meta = TraceMeta {
        label: "roundtrip/hbm-ddr4".to_string(),
        arch: "sectored".to_string(),
        window_cycles: dap.config().window_cycles,
    };

    // Window count must equal elapsed cycles / W, with nothing lost.
    assert_eq!(trace.records.len() as u64, WINDOWS);
    assert_eq!(trace.windows_observed(), WINDOWS);
    assert_eq!(trace.spilled + trace.dropped, 0);

    let dir = std::env::temp_dir().join(format!(
        "dap-roundtrip-{}-{}",
        std::process::id(),
        "artifacts"
    ));
    let _ = fs::remove_dir_all(&dir);
    let jsonl_path = dir.join("runs/trace.jsonl");
    let csv_path = dir.join("runs/trace.csv");
    write_window_trace_jsonl(&jsonl_path, &meta, &trace).expect("jsonl export");
    write_window_trace_csv(&csv_path, &meta, &trace).expect("csv export");

    let (meta_back, jsonl_back) = read_window_trace_jsonl(&jsonl_path).expect("jsonl parse");
    let csv_back = read_window_trace_csv(&csv_path).expect("csv parse");
    let _ = fs::remove_dir_all(&dir);

    assert_eq!(meta_back, meta);
    assert_eq!(jsonl_back.records, trace.records, "JSONL must be lossless");
    assert_eq!(csv_back, trace.records, "CSV must be lossless");

    let w = u64::from(meta.window_cycles);
    let mut saw_partitioned = false;
    let mut saw_applied = false;
    for (i, record) in jsonl_back.records.iter().enumerate() {
        let i = i as u64;
        assert_eq!(record.window_index, i);
        assert_eq!(record.end_cycle, (i + 1) * w, "boundaries align to W");

        let sources = usize::from(record.fractions.sources);
        assert_eq!(sources, 2, "HBM+DDR4 has two bandwidth sources");
        let solved_sum: f64 = record.fractions.solved[..sources].iter().sum();
        let ideal_sum: f64 = record.fractions.ideal[..sources].iter().sum();
        assert!(
            (solved_sum - 1.0).abs() < 1e-9,
            "window {i}: Σ f_i = {solved_sum}"
        );
        assert!((ideal_sum - 1.0).abs() < 1e-9);
        for f in &record.fractions.solved[..sources] {
            assert!((0.0..=1.0).contains(f), "window {i}: f = {f}");
        }
        for f in &record.fractions.ideal[..sources] {
            assert!((0.0..=1.0).contains(f));
        }

        // Applied credits can never exceed what the *previous* boundary
        // granted; the cheap always-true invariant is that both stay
        // within the per-window budget scale.
        assert!(record.granted.total() <= u64::from(u32::MAX));
        saw_partitioned |= record.partitioned;
        saw_applied |= record.applied.total() > 0;
    }
    assert!(
        saw_partitioned,
        "pressured windows must trigger partitioning"
    );
    assert!(
        saw_applied,
        "consumed credits must show up as applied counts"
    );

    // The controller's lifetime totals must equal the sum of per-window
    // applied counts — the trace is a complete decomposition.
    let applied_fwb: u64 = jsonl_back
        .records
        .iter()
        .map(|r| u64::from(r.applied.fwb))
        .sum();
    let applied_wb: u64 = jsonl_back
        .records
        .iter()
        .map(|r| u64::from(r.applied.wb))
        .sum();
    // Credits applied after the last boundary are not yet in any window;
    // this harness applies credits after each tick, so totals can exceed
    // the trace by at most one window's worth.
    assert!(dap.decisions().fwb >= applied_fwb);
    assert!(dap.decisions().wb >= applied_wb);
    assert!(dap.decisions().fwb - applied_fwb <= 1);
    assert!(dap.decisions().wb - applied_wb <= 1);
}

/// Splitmix64: the same deterministic generator the simulator uses for
/// jitter, reused here to corrupt artifacts reproducibly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Fuzz-style corruption: for several seeds, truncate, byte-flip, or
/// garbage-fill a random subset of record lines. The strict reader must
/// reject the file; the lenient reader must keep every intact record and
/// count exactly the corrupted lines.
#[test]
fn lenient_reader_survives_seeded_corruption() {
    if !dap_telemetry::enabled() {
        return;
    }
    let (dap, recorder) = drive_controller();
    let trace = recorder.take();
    let meta = TraceMeta {
        label: "corruption/hbm-ddr4".to_string(),
        arch: "sectored".to_string(),
        window_cycles: dap.config().window_cycles,
    };
    let dir = std::env::temp_dir().join(format!("dap-corrupt-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    let clean_path = dir.join("clean.jsonl");
    write_window_trace_jsonl(&clean_path, &meta, &trace).expect("jsonl export");
    let clean = fs::read_to_string(&clean_path).expect("read back");
    let lines: Vec<&str> = clean.lines().collect();
    assert!(lines.len() as u64 > WINDOWS, "header + records");

    for seed in 0..16u64 {
        let mut rng = seed.wrapping_mul(0x2545f4914f6cdd1d) ^ 0xdeadbeef;
        let mut corrupted = 0u64;
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            // Never corrupt the header (line 0): without a schema line the
            // file is not identifiable as an artifact at all.
            let mangle = i > 0 && splitmix64(&mut rng).is_multiple_of(8);
            if mangle {
                corrupted += 1;
                match splitmix64(&mut rng) % 3 {
                    0 => {
                        // Truncate mid-line, as a killed writer would.
                        let cut = 1 + (splitmix64(&mut rng) as usize) % (line.len() - 1);
                        let cut = (0..=cut).rev().find(|&c| line.is_char_boundary(c)).unwrap();
                        out.push_str(&line[..cut]);
                    }
                    1 => {
                        // Flip one byte to a brace-breaking character.
                        let pos = (splitmix64(&mut rng) as usize) % line.len();
                        let pos = (0..=pos).rev().find(|&c| line.is_char_boundary(c)).unwrap();
                        out.push_str(&line[..pos]);
                        out.push('}');
                        out.push_str(&line[(pos + 1).min(line.len())..]);
                    }
                    _ => out.push_str("not json at all"),
                }
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        if corrupted == 0 {
            continue;
        }
        let path = dir.join(format!("corrupt-{seed}.jsonl"));
        fs::write(&path, &out).expect("write corrupted");

        assert!(
            read_window_trace_jsonl(&path).is_err(),
            "seed {seed}: strict reader must reject a corrupted artifact"
        );
        let recovered = read_window_trace_jsonl_lenient(&path)
            .unwrap_or_else(|e| panic!("seed {seed}: lenient reader failed: {e}"));
        // A byte flip can accidentally still parse as a (different) valid
        // record, so `parse_errors` is at most the mangled count — but the
        // reader must never lose an untouched line.
        assert!(
            recovered.parse_errors <= corrupted,
            "seed {seed}: {} errors from {corrupted} corruptions",
            recovered.parse_errors
        );
        assert_eq!(
            recovered.trace.records.len() as u64 + recovered.parse_errors,
            WINDOWS,
            "seed {seed}: every record line is either kept or counted"
        );
        // Every surviving record is bit-identical to one the writer emitted.
        for record in &recovered.trace.records {
            assert_eq!(
                &trace.records[record.window_index as usize], record,
                "seed {seed}: window {} must round-trip exactly",
                record.window_index
            );
        }
        let text = dap_telemetry::summarize_recovered(&recovered);
        if recovered.parse_errors > 0 {
            assert!(text.contains("parse_errors:"), "{text}");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// CSV parity for the corruption contract: the strict CSV reader must
/// reject a corrupted artifact, the lenient one must keep every intact
/// row and count exactly the mangled ones — the same guarantees the
/// JSONL pair has had since PR 3.
#[test]
fn lenient_csv_reader_survives_seeded_corruption() {
    if !dap_telemetry::enabled() {
        return;
    }
    let (dap, recorder) = drive_controller();
    let trace = recorder.take();
    let meta = TraceMeta {
        label: "corruption-csv/hbm-ddr4".to_string(),
        arch: "sectored".to_string(),
        window_cycles: dap.config().window_cycles,
    };
    let dir = std::env::temp_dir().join(format!("dap-corrupt-csv-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    let clean_path = dir.join("clean.csv");
    write_window_trace_csv(&clean_path, &meta, &trace).expect("csv export");
    let clean = fs::read_to_string(&clean_path).expect("read back");
    let lines: Vec<&str> = clean.lines().collect();
    assert_eq!(lines.len() as u64, WINDOWS + 2, "header + columns + rows");

    for seed in 100..116u64 {
        let mut rng = seed.wrapping_mul(0x2545f4914f6cdd1d) ^ 0xdeadbeef;
        let mut corrupted = 0u64;
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            // Never corrupt the comment header or column row: without
            // them the file is not identifiable as a window trace.
            let mangle = i > 1 && splitmix64(&mut rng).is_multiple_of(8);
            if mangle {
                corrupted += 1;
                match splitmix64(&mut rng) % 3 {
                    0 => {
                        // Truncate mid-row, as a killed writer would.
                        let cut = 1 + (splitmix64(&mut rng) as usize) % (line.len() - 1);
                        out.push_str(&line[..cut]);
                    }
                    1 => {
                        // Replace one field with non-numeric garbage.
                        let fields: Vec<&str> = line.split(',').collect();
                        let victim = (splitmix64(&mut rng) as usize) % fields.len();
                        let mangled: Vec<&str> = fields
                            .iter()
                            .enumerate()
                            .map(|(j, f)| if j == victim { "xx" } else { *f })
                            .collect();
                        out.push_str(&mangled.join(","));
                    }
                    _ => out.push_str("not,a,row"),
                }
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        if corrupted == 0 {
            continue;
        }
        let path = dir.join(format!("corrupt-{seed}.csv"));
        fs::write(&path, &out).expect("write corrupted");

        assert!(
            read_window_trace_csv(&path).is_err(),
            "seed {seed}: strict CSV reader must reject a corrupted artifact"
        );
        let recovered = read_window_trace_csv_lenient(&path)
            .unwrap_or_else(|e| panic!("seed {seed}: lenient CSV reader failed: {e}"));
        // Truncation can land exactly on a field boundary and still parse
        // (the row just loses columns → counted), but a mid-digit cut can
        // also leave a shorter yet valid number — so `parse_errors` is at
        // most the mangled count, and no untouched row is ever lost.
        assert!(
            recovered.parse_errors <= corrupted,
            "seed {seed}: {} errors from {corrupted} corruptions",
            recovered.parse_errors
        );
        assert_eq!(
            recovered.records.len() as u64 + recovered.parse_errors,
            WINDOWS,
            "seed {seed}: every row is either kept or counted"
        );
        for record in &recovered.records {
            if record == &trace.records[record.window_index as usize] {
                continue;
            }
            // A mangled row that still parses differs from the original;
            // it must be one of the corrupted ones, not an intact row.
            assert!(corrupted > 0, "seed {seed}: intact row changed");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn summary_renders_for_a_real_trace() {
    if !dap_telemetry::enabled() {
        return;
    }
    let (dap, recorder) = drive_controller();
    let trace = recorder.take();
    let meta = TraceMeta {
        label: "summary/hbm-ddr4".to_string(),
        arch: "sectored".to_string(),
        window_cycles: dap.config().window_cycles,
    };
    let text = dap_telemetry::summarize(&meta, &trace);
    assert!(text.contains("summary/hbm-ddr4"), "{text}");
    assert!(text.contains(&format!("{WINDOWS} observed")), "{text}");
    assert!(text.contains("partitioned windows:"), "{text}");
}
