//! Seeded fuzz of the ops HTTP responder.
//!
//! The scrape endpoint faces whatever the network sends it, so this
//! harness drives both layers with deterministic byte soup:
//!
//! * the pure parser ([`handle_request`]) with thousands of random and
//!   mutated-from-valid requests — every input must yield a well-formed
//!   `200`/`400`/`404` response, never a panic;
//! * a live [`OpsServer`] socket with torn reads (partial request then
//!   close), oversized headers, pipelined garbage, and a silent staller
//!   — every connection resolves within the configured deadline, and a
//!   concurrent `/healthz` probe proves the accept loop never blocks.
//!
//! The PRNG is an inline SplitMix64 (same recurrence as
//! `workloads::rng`) because `dap-telemetry` sits below `workloads` in
//! the crate graph and must not depend on it.

use dap_telemetry::http::{handle_request, http_get, OpsResponse, OpsRouter, OpsServer};
use dap_telemetry::OpsServerConfig;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x0005_CA1E_F002;

/// SplitMix64 (Steele et al.), inlined to keep this crate leaf-level.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn test_router() -> OpsRouter {
    Arc::new(|path: &str| match path {
        "/metrics" => OpsResponse::ok_text("# TYPE up gauge\nup 1\n".to_string()),
        "/healthz" => OpsResponse::ok_text("ok\n".to_string()),
        _ => OpsResponse::not_found(),
    })
}

/// Asserts `raw` is one complete, well-formed HTTP/1.1 response with an
/// allowed status and a `Content-Length` that matches the body.
fn assert_well_formed(raw: &[u8], input: &[u8]) {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator for input {input:?}: {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line for input {input:?}: {head:?}"));
    assert!(
        matches!(status, 200 | 400 | 404),
        "status {status} for input {input:?}"
    );
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no Content-Length: {head:?}"));
    assert_eq!(len, body.len(), "length mismatch for input {input:?}");
}

/// Random byte soup, occasionally salted with HTTP-ish tokens so the
/// fuzz reaches past the first parse branches.
fn random_request(rng: &mut SplitMix64) -> Vec<u8> {
    const TOKENS: &[&[u8]] = &[
        b"GET ",
        b"POST ",
        b"/metrics",
        b"/healthz",
        b"/",
        b" HTTP/1.1",
        b" HTTP/1.0",
        b" HTTP/9.9",
        b"\r\n",
        b"\n",
        b"\r\n\r\n",
        b"Host: x",
        b"\x00",
        b"\xff\xfe",
        b"?q=1",
    ];
    let mut out = Vec::new();
    for _ in 0..rng.below(12) {
        if rng.below(2) == 0 {
            out.extend_from_slice(TOKENS[rng.below(TOKENS.len() as u64) as usize]);
        } else {
            for _ in 0..rng.below(20) {
                out.push(rng.next() as u8);
            }
        }
    }
    out.extend_from_slice(b"\r\n\r\n"); // make it "complete" for the pure layer
    out
}

/// A valid request with a seeded mutation: byte flip, truncation,
/// insertion, or duplication (pipelining).
fn mutated_request(rng: &mut SplitMix64) -> Vec<u8> {
    let mut req = b"GET /metrics HTTP/1.1\r\nHost: fuzz\r\n\r\n".to_vec();
    match rng.below(4) {
        0 => {
            let at = rng.below(req.len() as u64) as usize;
            req[at] ^= (rng.next() as u8) | 1;
        }
        1 => {
            req.truncate(rng.below(req.len() as u64) as usize);
            req.extend_from_slice(b"\r\n\r\n");
        }
        2 => {
            let at = rng.below(req.len() as u64) as usize;
            req.insert(at, rng.next() as u8);
        }
        _ => {
            let dup = req.clone();
            req.extend_from_slice(&dup); // pipelined second request
        }
    }
    req
}

#[test]
fn pure_parser_never_panics_and_always_answers() {
    let router = test_router();
    let mut rng = SplitMix64(SEED);
    for _ in 0..4_000 {
        let req = random_request(&mut rng);
        let resp = handle_request(&req, router.as_ref());
        assert_well_formed(&resp, &req);
    }
    for _ in 0..4_000 {
        let req = mutated_request(&mut rng);
        let resp = handle_request(&req, router.as_ref());
        assert_well_formed(&resp, &req);
    }
}

#[test]
fn socket_survives_torn_oversized_and_pipelined_abuse() {
    let handle = OpsServer::bind("127.0.0.1:0")
        .unwrap()
        .with_config(OpsServerConfig {
            read_deadline: Duration::from_millis(300),
            max_connections: 8,
            max_request_bytes: 2 * 1024,
        })
        .spawn(test_router())
        .unwrap();
    let addr = handle.addr();
    let mut rng = SplitMix64(SEED ^ 1);

    for case in 0..48u32 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        match case % 4 {
            0 => {
                // Torn read: half a request line, then FIN.
                let req = b"GET /metr";
                let cut = rng.below(req.len() as u64) as usize;
                let _ = stream.write_all(&req[..cut]);
                let _ = stream.shutdown(Shutdown::Write);
            }
            1 => {
                // Oversized headers: blow past max_request_bytes.
                let mut big = b"GET /metrics HTTP/1.1\r\n".to_vec();
                while big.len() < 4 * 1024 {
                    big.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
                }
                let _ = stream.write_all(&big);
            }
            2 => {
                // Pipelined garbage: one valid + trailing soup in one write.
                let mut req = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
                req.extend(random_request(&mut rng));
                let _ = stream.write_all(&req);
            }
            _ => {
                // Raw soup, complete with terminator.
                let _ = stream.write_all(&random_request(&mut rng));
            }
        }
        // Every connection resolves: either a well-formed response or a
        // clean close — never a hang past the deadline + margin.
        let mut resp = Vec::new();
        let _ = stream.read_to_end(&mut resp);
        if !resp.is_empty() {
            assert_well_formed(&resp, &[case as u8]);
        }
    }

    // The endpoint still serves after all that.
    let (status, body) = http_get(&addr.to_string(), "/healthz", Duration::from_secs(2)).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    handle.join();
}

#[test]
fn silent_staller_never_blocks_the_accept_loop() {
    let handle = OpsServer::bind("127.0.0.1:0")
        .unwrap()
        .with_config(OpsServerConfig {
            read_deadline: Duration::from_secs(2),
            max_connections: 8,
            ..OpsServerConfig::default()
        })
        .spawn(test_router())
        .unwrap();
    let addr = handle.addr();

    // Open connections that never send a byte, holding them across the
    // probe. They occupy worker threads but must not park the acceptor.
    let stallers: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();

    let t0 = Instant::now();
    let (status, _) = http_get(&addr.to_string(), "/healthz", Duration::from_secs(2)).unwrap();
    assert_eq!(status, 200);
    assert!(
        t0.elapsed() < Duration::from_millis(1_500),
        "healthz stalled behind silent peers: {:?}",
        t0.elapsed()
    );

    drop(stallers);
    handle.join();
}
