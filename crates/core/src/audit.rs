//! Checked simulation mode: runtime verification of DAP's conservation
//! laws.
//!
//! DAP's correctness rests on a handful of per-window invariants — the
//! Eq. 4 partition `B_1/f_1 = … = B_n/f_n`, fraction conservation
//! `Σ f_i = 1` (Eq. 2's domain), credit counters that never go negative,
//! monotone window stamps, and access-count conservation between the
//! simulator's channel accounting and the controller's window counters.
//! A bug in any of them silently corrupts every downstream figure. This
//! module makes the laws *checked*: a [`WindowAuditor`] attached to the
//! controller re-verifies each [`WindowSnapshot`][crate::WindowSnapshot]
//! at the boundary where it is produced.
//!
//! ## Modes
//!
//! * [`AuditMode::Strict`] — the first violation panics with the full
//!   [`AuditViolation`] (window id, source, expected/actual, equation
//!   reference). This is the *one* deliberate panic class left in the
//!   library surface: it fires only on internal-consistency bugs, never
//!   on user input, and the experiment harness's per-cell `catch_unwind`
//!   turns it into a structured `CellError`.
//! * [`AuditMode::Observe`] — violations are counted (globally and in
//!   the per-controller [`AuditReport`]) and forwarded to any attached
//!   [`TelemetrySink`][crate::TelemetrySink], but execution continues.
//! * [`AuditMode::Off`] — no checking, no snapshot assembly overhead.
//!
//! The default is `Strict` in debug builds and `Off` in release builds;
//! the `DAP_AUDIT` environment variable (`1`/`strict`, `observe`,
//! `0`/`off`) and the figure binaries' `--audit` flag override it. The
//! `audit-off` cargo feature compiles the whole machinery to no-ops
//! (mirroring `telemetry-off`), for builds that must not even carry the
//! mode checks.
//!
//! Auditing never mutates simulation state: an audited run and an
//! unaudited run of the same configuration produce bit-identical
//! results.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::telemetry::{SourceFractions, WindowSnapshot, MAX_SOURCES};
use crate::window::WindowStats;

/// Whether this build performs audit checks (`false` under `audit-off`).
pub const fn enabled() -> bool {
    cfg!(not(feature = "audit-off"))
}

/// How strictly the auditor reacts to a violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// No checking at all.
    Off,
    /// Count violations (and forward them to the telemetry sink) but
    /// keep running.
    Observe,
    /// Panic on the first violation. The experiment harness catches the
    /// panic per cell and surfaces it as a structured `CellError`.
    Strict,
}

/// The environment variable controlling the default audit mode:
/// `1`/`strict`/`on` → [`AuditMode::Strict`], `observe`/`count` →
/// [`AuditMode::Observe`], `0`/`off`/`false` → [`AuditMode::Off`].
/// Unset falls back to `Strict` in debug builds and `Off` in release.
pub const AUDIT_ENV: &str = "DAP_AUDIT";

/// Process-wide mode override installed by `--audit`-style CLI flags:
/// 0 = unset, otherwise 1 + (mode as u8).
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Process-wide count of violations observed (all controllers, all
/// threads) in [`AuditMode::Observe`]. Strict-mode panics also bump this
/// before unwinding, so harnesses that catch the panic still see it.
static OBSERVED_VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Installs (or clears) a process-wide audit mode override that takes
/// precedence over [`AUDIT_ENV`] and the build default. Used by the
/// `--audit` flag of the figure binaries.
pub fn set_mode_override(mode: Option<AuditMode>) {
    let encoded = match mode {
        None => 0,
        Some(AuditMode::Off) => 1,
        Some(AuditMode::Observe) => 2,
        Some(AuditMode::Strict) => 3,
    };
    MODE_OVERRIDE.store(encoded, Ordering::Relaxed);
}

/// Total violations recorded process-wide (see [`OBSERVED_VIOLATIONS`]).
pub fn observed_violations() -> u64 {
    OBSERVED_VIOLATIONS.load(Ordering::Relaxed)
}

/// Parses an audit-mode spelling (the `DAP_AUDIT` / `--audit` grammar):
/// `""`/`"0"`/`"off"`/`"false"`/`"no"` → `Off`, `"observe"`/`"count"` →
/// `Observe`, anything else (`"1"`, `"strict"`, `"on"`, ...) → `Strict`.
pub fn parse_mode(value: &str) -> AuditMode {
    match value.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" | "no" => AuditMode::Off,
        "observe" | "count" => AuditMode::Observe,
        // Any other non-empty value is a request *for* auditing; the
        // documented spellings are "1", "strict", and "on".
        _ => AuditMode::Strict,
    }
}

/// The audit mode newly created controllers run with: the
/// [`set_mode_override`] value if set, else [`AUDIT_ENV`] if set, else
/// `Strict` in debug builds and `Off` in release builds. Always `Off`
/// under the `audit-off` feature.
pub fn default_mode() -> AuditMode {
    if !enabled() {
        return AuditMode::Off;
    }
    match MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return AuditMode::Off,
        2 => return AuditMode::Observe,
        3 => return AuditMode::Strict,
        _ => {}
    }
    match std::env::var(AUDIT_ENV) {
        Ok(value) => parse_mode(&value),
        Err(_) => {
            if cfg!(debug_assertions) {
                AuditMode::Strict
            } else {
                AuditMode::Off
            }
        }
    }
}

/// Which conservation law a violation broke. Each variant carries the
/// paper-equation reference the check derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// `Σ f_i = 1` over the bandwidth sources, and every `f_i ∈ [0, 1]`
    /// (the domain Eq. 2 is defined over).
    FractionConservation,
    /// The reported Eq. 4 ideal must be the bandwidth-proportional
    /// vector `f_i = B_i / ΣB`, and an active plan must not move the
    /// solved partition *away* from it.
    Eq4Proportionality,
    /// Credits applied in a window never exceed the credits granted and
    /// still available — the counters can never go negative (Section
    /// IV-B's `MAX_APPLICATIONS_PER_WINDOW`-capped counters).
    CreditConservation,
    /// Window indices advance by one and end-cycle stamps strictly
    /// increase.
    MonotoneWindows,
    /// Accesses counted by the simulator's channel accounting equal the
    /// accesses accumulated into the controller's windows (Eq. 1/2
    /// served-access conservation).
    ServedConservation,
}

impl Invariant {
    /// The paper-equation (or section) reference for the invariant.
    pub fn equation(&self) -> &'static str {
        match self {
            Invariant::FractionConservation => "Eq. 2 (Σf = 1)",
            Invariant::Eq4Proportionality => "Eq. 4 (B_i/f_i equalized)",
            Invariant::CreditConservation => "Sec. IV-B (credit counters)",
            Invariant::MonotoneWindows => "Sec. IV-A (window W)",
            Invariant::ServedConservation => "Eq. 1/2 (access conservation)",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.equation())
    }
}

/// One violated invariant, located precisely.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Zero-based index of the window at whose boundary the check fired.
    pub window_index: u64,
    /// The broken law (carries the equation reference).
    pub invariant: Invariant,
    /// Which bandwidth source (or technique lane) tripped the check,
    /// when the invariant is per-source; e.g. `"mm"`, `"cache"`,
    /// `"read"`, `"wb"`.
    pub source: &'static str,
    /// The value the invariant requires.
    pub expected: f64,
    /// The value observed.
    pub actual: f64,
    /// Human-readable elaboration (which quantity, which bound).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit violation [{}] window {} source {}: {} (expected {}, got {})",
            self.invariant.equation(),
            self.window_index,
            self.source,
            self.detail,
            self.expected,
            self.actual,
        )
    }
}

/// A strict-mode audit failure as a typed error (the panic payload's
/// `Display` form carries the same content).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditError {
    /// The violation that failed the run.
    pub violation: AuditViolation,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.violation, f)
    }
}

impl std::error::Error for AuditError {}

/// Per-invariant violation counts plus the first few violations seen.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Windows checked.
    pub windows_checked: u64,
    /// Total violations recorded.
    pub violations: u64,
    /// The first violations (capped) for diagnostics.
    pub first: Vec<AuditViolation>,
}

impl AuditReport {
    /// How many of the first violations are retained in [`first`].
    ///
    /// [`first`]: AuditReport::first
    pub const RETAINED: usize = 16;

    /// `Ok` when no violation was recorded; otherwise the first one as a
    /// typed [`AuditError`].
    pub fn into_result(self) -> Result<(), AuditError> {
        match self.first.into_iter().next() {
            None => Ok(()),
            Some(violation) => Err(AuditError { violation }),
        }
    }
}

/// Absolute tolerance for `Σf = 1` and for comparing the reported ideal
/// against an independent recomputation (pure floating-point noise).
pub const SUM_TOL: f64 = 1e-9;

/// Slack for the "plan moves toward the ideal" check, beyond per-access
/// granularity: the rational `K ≈ B_MS$/B_MM` encoding is only accurate
/// to 5% (`Ratio::approximate`), and each technique's integer rounding
/// can land the partition a few accesses past the target.
pub const PROPORTIONALITY_SLACK: f64 = 0.05;

const TECHNIQUES: [&str; 5] = ["fwb", "wb", "ifrm", "sfrm", "write_through"];

/// The per-technique credit cap (mirrors
/// [`credits::MAX_APPLICATIONS_PER_WINDOW`][crate::credits]).
const CREDIT_CAP: u64 = crate::credits::MAX_APPLICATIONS_PER_WINDOW as u64;

/// Checks every window boundary of one controller. Owned by
/// [`DapController`][crate::DapController]; never mutates anything the
/// simulation reads.
#[derive(Debug, Clone)]
pub struct WindowAuditor {
    mode: AuditMode,
    report: AuditReport,
    /// Last window index / end cycle seen, for the monotonicity check.
    last: Option<(u64, u64)>,
    /// Conservative upper bound of credits available per technique
    /// (fwb, wb, ifrm, sfrm, write_through): clears only ever *reduce*
    /// the real counters below this model, so `applied > available`
    /// proves a real conservation bug without false positives.
    available: [u64; 5],
    /// Lifetime access counts the controller's `note_*` methods fed in.
    noted_cache: u64,
    noted_mm: u64,
    /// Lifetime access counts summed over emitted window snapshots.
    windowed_cache: u64,
    windowed_mm: u64,
    /// Set when `end_window_with` was driven by externally collected
    /// stats (tests); disables the noted-vs-windowed conservation check,
    /// which is only meaningful for internally accumulated counters.
    external_stats: bool,
}

impl WindowAuditor {
    /// A fresh auditor in `mode`; returns `None` for [`AuditMode::Off`]
    /// (and always under the `audit-off` feature), so the controller
    /// carries no audit state at all when disabled.
    pub fn new(mode: AuditMode) -> Option<Box<Self>> {
        if !enabled() || mode == AuditMode::Off {
            return None;
        }
        Some(Box::new(Self {
            mode,
            report: AuditReport::default(),
            last: None,
            available: [0; 5],
            noted_cache: 0,
            noted_mm: 0,
            windowed_cache: 0,
            windowed_mm: 0,
            external_stats: false,
        }))
    }

    /// The violations recorded so far.
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    /// Lifetime `(cache, mm)` access totals fed in through
    /// [`note_cache_access`](Self::note_cache_access) /
    /// [`note_mm_access`](Self::note_mm_access).
    pub fn noted_totals(&self) -> (u64, u64) {
        (self.noted_cache, self.noted_mm)
    }

    /// Marks one cache access observed by the controller.
    pub fn note_cache_access(&mut self) {
        self.noted_cache += 1;
    }

    /// Marks one main-memory access observed by the controller.
    pub fn note_mm_access(&mut self) {
        self.noted_mm += 1;
    }

    /// Marks that window stats were supplied externally (disables the
    /// noted-vs-windowed conservation check).
    pub fn note_external_stats(&mut self) {
        self.external_stats = true;
    }

    fn record(&mut self, violation: AuditViolation) {
        self.report.violations += 1;
        OBSERVED_VIOLATIONS.fetch_add(1, Ordering::Relaxed);
        if self.report.first.len() < AuditReport::RETAINED {
            self.report.first.push(violation.clone());
        }
        if self.mode == AuditMode::Strict {
            // invariant: a strict-mode violation is an internal
            // consistency bug, not a user-input error; fail fast so the
            // harness's per-cell catch_unwind reports it structurally.
            panic!("{violation}");
        }
    }

    /// Runs every check against one window-boundary snapshot.
    ///
    /// `weights` are the per-source bandwidth weights the controller
    /// solved against (the rational `K`'s numerator/denominator, or the
    /// measured GB/s figures) — only the first `snapshot.fractions
    /// .sources` entries are meaningful.
    pub fn check_window(
        &mut self,
        snapshot: &WindowSnapshot,
        weights: [f64; MAX_SOURCES],
    ) -> Vec<AuditViolation> {
        if !enabled() {
            return Vec::new();
        }
        let before = self.report.first.len();
        self.report.windows_checked += 1;
        self.check_monotone(snapshot);
        self.check_fraction_conservation(snapshot);
        self.check_eq4(snapshot, weights);
        self.check_credits(snapshot);
        self.check_served(snapshot);
        self.report.first[before..].to_vec()
    }

    fn check_monotone(&mut self, s: &WindowSnapshot) {
        if let Some((index, end_cycle)) = self.last {
            if s.window_index != index + 1 {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::MonotoneWindows,
                    source: "index",
                    expected: (index + 1) as f64,
                    actual: s.window_index as f64,
                    detail: "window indices must advance by exactly one".into(),
                });
            }
            if s.end_cycle <= end_cycle {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::MonotoneWindows,
                    source: "end_cycle",
                    expected: (end_cycle + 1) as f64,
                    actual: s.end_cycle as f64,
                    detail: "end-cycle stamps must strictly increase".into(),
                });
            }
        }
        self.last = Some((s.window_index, s.end_cycle));
    }

    fn check_fraction_conservation(&mut self, s: &WindowSnapshot) {
        let f = &s.fractions;
        let n = usize::from(f.sources);
        for (name, values) in [("solved", &f.solved), ("ideal", &f.ideal)] {
            let sum: f64 = values[..n].iter().sum();
            if (sum - 1.0).abs() > SUM_TOL {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::FractionConservation,
                    source: if name == "solved" { "solved" } else { "ideal" },
                    expected: 1.0,
                    actual: sum,
                    detail: format!("{name} fractions must sum to 1 over {n} sources"),
                });
                return;
            }
            if let Some(&bad) = values[..n]
                .iter()
                .find(|v| !v.is_finite() || **v < -SUM_TOL || **v > 1.0 + SUM_TOL)
            {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::FractionConservation,
                    source: if name == "solved" { "solved" } else { "ideal" },
                    expected: 0.0,
                    actual: bad,
                    detail: format!("every {name} fraction must lie in [0, 1]"),
                });
                return;
            }
        }
    }

    fn check_eq4(&mut self, s: &WindowSnapshot, weights: [f64; MAX_SOURCES]) {
        let f = &s.fractions;
        let n = usize::from(f.sources);
        // (a) The reported ideal must be the normalized weight vector
        // f_i = B_i / ΣB (uniform when every source is dark) — recomputed
        // here independently of the telemetry builders.
        let expected = ideal_from_weights(f.sources, weights);
        for i in 0..n {
            if (f.ideal[i] - expected[i]).abs() > SUM_TOL {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::Eq4Proportionality,
                    source: SOURCE_NAMES[n - 2][i],
                    expected: expected[i],
                    actual: f.ideal[i],
                    detail: "ideal fraction must be bandwidth-proportional (B_i / ΣB)".into(),
                });
                return;
            }
        }
        // (b) An active plan must not move the partition away from the
        // ideal: the solved deviation may exceed the unpartitioned
        // (raw traffic) deviation only by rational-K error plus integer
        // granularity.
        if !s.partitioned {
            return;
        }
        let raw = raw_fractions(&s.stats, f.sources);
        let total: f64 = raw.iter().take(n).sum();
        if total <= 0.0 {
            return;
        }
        let mut raw_dev = 0.0f64;
        for i in 0..n {
            raw_dev = raw_dev.max((raw[i] / total - expected[i]).abs());
        }
        let granted = s.granted.total() as f64;
        let slack = PROPORTIONALITY_SLACK + (2.0 * granted + 8.0) / total;
        let solved_dev = f.max_deviation();
        if solved_dev > raw_dev + slack {
            self.record(AuditViolation {
                window_index: s.window_index,
                invariant: Invariant::Eq4Proportionality,
                source: "plan",
                expected: raw_dev + slack,
                actual: solved_dev,
                detail: format!(
                    "an active plan moved the partition away from the Eq. 4 \
                     ideal (deviation {solved_dev:.4} vs unpartitioned {raw_dev:.4})"
                ),
            });
        }
    }

    fn check_credits(&mut self, s: &WindowSnapshot) {
        let applied = [
            s.applied.fwb,
            s.applied.wb,
            s.applied.ifrm,
            s.applied.sfrm,
            s.applied.write_through,
        ];
        let granted = [
            s.granted.fwb,
            s.granted.wb,
            s.granted.ifrm,
            s.granted.sfrm,
            s.granted.write_through,
        ];
        for lane in 0..5 {
            let used = u64::from(applied[lane]);
            if used > self.available[lane] {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::CreditConservation,
                    source: TECHNIQUES[lane],
                    expected: self.available[lane] as f64,
                    actual: used as f64,
                    detail: "applied credits exceed the credits ever granted \
                             and still available (counter went negative)"
                        .into(),
                });
                // Keep the model consistent so one bug reports once.
                self.available[lane] = used;
            }
            self.available[lane] =
                (self.available[lane] - used + u64::from(granted[lane])).min(CREDIT_CAP);
        }
    }

    fn check_served(&mut self, s: &WindowSnapshot) {
        self.windowed_cache += u64::from(s.stats.cache_accesses);
        self.windowed_mm += u64::from(s.stats.mm_accesses);
        if self.external_stats {
            return;
        }
        for (name, windowed, noted) in [
            ("cache", self.windowed_cache, self.noted_cache),
            ("mm", self.windowed_mm, self.noted_mm),
        ] {
            if windowed != noted {
                self.record(AuditViolation {
                    window_index: s.window_index,
                    invariant: Invariant::ServedConservation,
                    source: name,
                    expected: noted as f64,
                    actual: windowed as f64,
                    detail: format!(
                        "sum of per-window {name} accesses must equal the \
                         accesses the controller observed (none lost or \
                         double-counted at boundaries)"
                    ),
                });
                return;
            }
        }
    }
}

/// Source labels for two-source (cache/mm) and three-source
/// (read/write/mm) architectures, indexed by `sources - 2`.
const SOURCE_NAMES: [[&str; MAX_SOURCES]; 2] = [["cache", "mm", ""], ["read", "write", "mm"]];

/// The Eq. 4 bandwidth-proportional ideal for raw weights: normalized,
/// clamped at zero, uniform when all sources are dark — the same rule
/// the telemetry fraction builders use.
pub fn ideal_from_weights(sources: u8, weights: [f64; MAX_SOURCES]) -> [f64; MAX_SOURCES] {
    let n = usize::from(sources);
    let mut ideal = [0.0; MAX_SOURCES];
    let sum: f64 = weights[..n].iter().map(|w| w.max(0.0)).sum();
    if sum > 0.0 {
        for i in 0..n {
            ideal[i] = weights[i].max(0.0) / sum;
        }
    } else {
        for slot in ideal.iter_mut().take(n) {
            *slot = 1.0 / n as f64;
        }
    }
    ideal
}

/// The unpartitioned per-source access counts for a window: what each
/// source served before any plan intervened.
fn raw_fractions(stats: &WindowStats, sources: u8) -> [f64; MAX_SOURCES] {
    if sources >= 3 {
        [
            f64::from(stats.cache_read_accesses),
            f64::from(stats.cache_write_accesses),
            f64::from(stats.mm_accesses),
        ]
    } else {
        [
            f64::from(stats.cache_accesses),
            f64::from(stats.mm_accesses),
            0.0,
        ]
    }
}

/// Convenience for layers outside the controller (e.g. the simulator's
/// channel-accounting conservation check): record one violation in the
/// current process-wide mode — panic under [`AuditMode::Strict`], count
/// under [`AuditMode::Observe`].
pub fn report_violation(mode: AuditMode, violation: AuditViolation) {
    if !enabled() || mode == AuditMode::Off {
        return;
    }
    OBSERVED_VIOLATIONS.fetch_add(1, Ordering::Relaxed);
    if mode == AuditMode::Strict {
        // invariant: see WindowAuditor::record — deliberate fail-fast on
        // internal consistency bugs only.
        panic!("{violation}");
    }
}

/// A placeholder [`SourceFractions`] at the two-source uniform ideal,
/// used only to build snapshots for paths that never read fractions.
pub fn trivial_fractions() -> SourceFractions {
    SourceFractions {
        sources: 2,
        solved: [0.5, 0.5, 0.0],
        ideal: [0.5, 0.5, 0.0],
    }
}

// The auditor constructs to `None` under `audit-off`, so these tests
// only exist in checking builds.
#[cfg(all(test, not(feature = "audit-off")))]
mod tests {
    use super::*;
    use crate::telemetry::{SourceFractions, TechniqueCounts};

    fn snapshot(index: u64) -> WindowSnapshot {
        WindowSnapshot {
            window_index: index,
            end_cycle: (index + 1) * 64,
            stats: WindowStats::default(),
            partitioned: false,
            granted: TechniqueCounts::default(),
            applied: TechniqueCounts::default(),
            fractions: SourceFractions {
                sources: 2,
                solved: [11.0 / 15.0, 4.0 / 15.0, 0.0],
                ideal: [11.0 / 15.0, 4.0 / 15.0, 0.0],
            },
        }
    }

    const K_WEIGHTS: [f64; MAX_SOURCES] = [11.0, 4.0, 0.0];

    fn observe() -> Box<WindowAuditor> {
        WindowAuditor::new(AuditMode::Observe).expect("observe mode constructs")
    }

    #[test]
    fn clean_windows_produce_no_violations() {
        let mut a = observe();
        a.note_external_stats();
        for i in 0..5 {
            assert!(a.check_window(&snapshot(i), K_WEIGHTS).is_empty());
        }
        assert_eq!(a.report().violations, 0);
        assert_eq!(a.report().windows_checked, 5);
    }

    #[test]
    fn off_mode_constructs_nothing() {
        assert!(WindowAuditor::new(AuditMode::Off).is_none());
    }

    #[test]
    fn fraction_sum_violation_is_caught() {
        let mut a = observe();
        a.note_external_stats();
        let mut s = snapshot(0);
        s.fractions.solved = [0.9, 0.3, 0.0];
        let v = a.check_window(&s, K_WEIGHTS);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::FractionConservation);
        assert!(v[0].invariant.equation().contains("Eq. 2"));
    }

    #[test]
    fn wrong_ideal_is_an_eq4_violation() {
        let mut a = observe();
        a.note_external_stats();
        let mut s = snapshot(0);
        s.fractions.ideal = [0.5, 0.5, 0.0];
        s.fractions.solved = [0.5, 0.5, 0.0];
        let v = a.check_window(&s, K_WEIGHTS);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::Eq4Proportionality);
        assert!(v[0].invariant.equation().contains("Eq. 4"));
    }

    #[test]
    fn negative_credit_balance_is_caught() {
        let mut a = observe();
        a.note_external_stats();
        let mut s = snapshot(0);
        s.applied.fwb = 3; // nothing was ever granted
        let v = a.check_window(&s, K_WEIGHTS);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::CreditConservation);
        assert_eq!(v[0].source, "fwb");
    }

    #[test]
    fn credits_granted_then_applied_pass() {
        let mut a = observe();
        a.note_external_stats();
        let mut s0 = snapshot(0);
        s0.granted.wb = 5;
        assert!(a.check_window(&s0, K_WEIGHTS).is_empty());
        let mut s1 = snapshot(1);
        s1.applied.wb = 5;
        assert!(a.check_window(&s1, K_WEIGHTS).is_empty());
        let mut s2 = snapshot(2);
        s2.applied.wb = 1; // balance is back to zero
        assert_eq!(a.check_window(&s2, K_WEIGHTS).len(), 1);
    }

    #[test]
    fn credit_model_saturates_at_the_cap() {
        let mut a = observe();
        a.note_external_stats();
        for i in 0..4 {
            let mut s = snapshot(i);
            s.granted.sfrm = 60;
            a.check_window(&s, K_WEIGHTS);
        }
        // Despite 240 granted, at most 63 can be available.
        let mut s = snapshot(4);
        s.applied.sfrm = 64;
        let v = a.check_window(&s, K_WEIGHTS);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::CreditConservation);
    }

    #[test]
    fn non_monotone_window_index_is_caught() {
        let mut a = observe();
        a.note_external_stats();
        assert!(a.check_window(&snapshot(0), K_WEIGHTS).is_empty());
        let v = a.check_window(&snapshot(0), K_WEIGHTS);
        assert!(v.iter().any(|v| v.invariant == Invariant::MonotoneWindows));
    }

    #[test]
    fn strict_mode_panics_with_equation_reference() {
        let result = std::panic::catch_unwind(|| {
            let mut a = WindowAuditor::new(AuditMode::Strict).expect("strict constructs");
            a.note_external_stats();
            let mut s = snapshot(0);
            s.fractions.solved = [2.0, -1.0, 0.0];
            a.check_window(&s, K_WEIGHTS);
        });
        let payload = result.expect_err("strict mode must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("Eq. 2"),
            "panic names the equation: {message}"
        );
    }

    #[test]
    fn served_conservation_checks_internal_stats() {
        let mut a = observe();
        // 3 cache accesses noted, but the snapshot claims 4.
        a.note_cache_access();
        a.note_cache_access();
        a.note_cache_access();
        let mut s = snapshot(0);
        s.stats.cache_accesses = 4;
        s.fractions.solved = [1.0, 0.0, 0.0];
        s.fractions.ideal = [11.0 / 15.0, 4.0 / 15.0, 0.0];
        let v = a.check_window(&s, K_WEIGHTS);
        assert!(v
            .iter()
            .any(|v| v.invariant == Invariant::ServedConservation));
    }

    #[test]
    fn mode_parsing_covers_documented_spellings() {
        assert_eq!(parse_mode("0"), AuditMode::Off);
        assert_eq!(parse_mode("off"), AuditMode::Off);
        assert_eq!(parse_mode(""), AuditMode::Off);
        assert_eq!(parse_mode("observe"), AuditMode::Observe);
        assert_eq!(parse_mode("1"), AuditMode::Strict);
        assert_eq!(parse_mode("strict"), AuditMode::Strict);
        assert_eq!(parse_mode("on"), AuditMode::Strict);
    }

    #[test]
    fn ideal_from_weights_matches_dark_source_rule() {
        let i = ideal_from_weights(2, [0.0, 38.4, 0.0]);
        assert_eq!(i[0], 0.0);
        assert!((i[1] - 1.0).abs() < 1e-12);
        let u = ideal_from_weights(3, [0.0, 0.0, 0.0]);
        assert!((u[0] - 1.0 / 3.0).abs() < 1e-12);
    }
}
