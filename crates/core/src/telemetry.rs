//! The telemetry seam: per-window snapshots of the DAP control loop.
//!
//! DAP's contribution is a *control loop* — observe one window, solve,
//! load credits, spend them — yet end-of-run aggregates cannot show how
//! that loop behaves: whether the credit counters converge, when SFRM
//! fires, or how far the solved partition sits from the Eq. 4 ideal
//! `f_i = B_i / ΣB`. This module defines the event the controller emits
//! at every window boundary ([`WindowSnapshot`]) and the sink interface
//! ([`TelemetrySink`]) an observability layer implements to receive it.
//!
//! The seam is deliberately lightweight: when no sink is attached the
//! controller skips all snapshot assembly (a single `Option` check per
//! window), and the `dap-telemetry` crate's `telemetry-off` feature turns
//! the recording side into no-ops without touching this crate.

use std::fmt;
use std::sync::Arc;

use crate::alloy::AlloyPlan;
use crate::edram::EdramPlan;
use crate::ratio::Ratio;
use crate::sectored::SectoredPlan;
use crate::window::WindowStats;

/// The maximum number of bandwidth sources any architecture exposes
/// (read channels, write channels, main memory — the eDRAM case).
pub const MAX_SOURCES: usize = 3;

/// Per-technique counts, either *granted* (credits loaded at a window
/// boundary) or *applied* (credits actually consumed during a window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TechniqueCounts {
    /// Fill write bypasses.
    pub fwb: u32,
    /// Write bypasses.
    pub wb: u32,
    /// Informed forced read misses.
    pub ifrm: u32,
    /// Speculative forced read misses.
    pub sfrm: u32,
    /// Write-throughs (Alloy only).
    pub write_through: u32,
}

impl TechniqueCounts {
    /// Sum over all techniques.
    pub fn total(&self) -> u64 {
        u64::from(self.fwb)
            + u64::from(self.wb)
            + u64::from(self.ifrm)
            + u64::from(self.sfrm)
            + u64::from(self.write_through)
    }
}

/// The solved access fractions for one window, next to the Eq. 4 ideal.
///
/// `solved[i]` is the fraction of the window's accesses each bandwidth
/// source would serve *after* the computed partition plan is applied;
/// `ideal[i]` is the bandwidth-proportional optimum `B_i / ΣB`. Only the
/// first `sources` entries are meaningful. For a window with no traffic
/// the solved fractions are reported *at* the ideal (the partition a
/// traffic-free window trivially satisfies), so `Σ solved[i] = 1` holds
/// for every record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceFractions {
    /// Number of meaningful entries (2 for single-bus/Alloy, 3 for eDRAM).
    pub sources: u8,
    /// Post-plan access fraction per source.
    pub solved: [f64; MAX_SOURCES],
    /// Bandwidth-proportional ideal per source (Eq. 4).
    pub ideal: [f64; MAX_SOURCES],
}

impl SourceFractions {
    /// Largest absolute deviation `|solved_i - ideal_i|` over the sources.
    pub fn max_deviation(&self) -> f64 {
        (0..usize::from(self.sources))
            .map(|i| (self.solved[i] - self.ideal[i]).abs())
            .fold(0.0, f64::max)
    }
}

/// Everything the controller knows at one window boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Zero-based index of the window that just ended.
    pub window_index: u64,
    /// CPU cycle at which the window ended (`(index + 1) * W` — the
    /// controller aligns boundaries to multiples of the window length).
    pub end_cycle: u64,
    /// The access counts observed during the window.
    pub stats: WindowStats,
    /// Whether the solver produced a non-idle plan for the next window.
    pub partitioned: bool,
    /// Credits granted for the *next* window by this boundary's solve.
    pub granted: TechniqueCounts,
    /// Credits consumed *during* the window that just ended.
    pub applied: TechniqueCounts,
    /// Solved access fractions vs. the Eq. 4 ideal.
    pub fractions: SourceFractions,
}

/// Per-window cycle-attribution totals from the simulator-side profiler.
///
/// The `mem-sim` access profiler samples demand reads/writes 1-in-N by
/// address hash and decomposes each sampled access into phases (see the
/// profiler's phase taxonomy). At every window boundary the sampled
/// totals are rolled up into one of these records, so a trace can show
/// the queue-wait shift Sec. III predicts when DAP activates. All cycle
/// fields are *sums over the window's sampled accesses*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileWindow {
    /// Zero-based index of the window the totals cover.
    pub window_index: u64,
    /// Sampled accesses folded into this window.
    pub samples: u64,
    /// Sampled accesses whose route a granted DAP technique changed.
    pub grants: u64,
    /// Cycles resolving tags in the SRAM tag cache.
    pub tag_probe: u64,
    /// Cycles resolving tags/metadata in the DRAM-cache array.
    pub cache_tag: u64,
    /// Cache-queue wait cycles observed at access arrival.
    pub cache_queue_wait: u64,
    /// Main-memory-queue wait cycles observed at access arrival.
    pub mm_queue_wait: u64,
    /// Channel CAS service cycles (completion minus waits and tag work).
    pub channel_cas: u64,
    /// Cycles traded by DAP grant decisions (the queue-estimate
    /// differential between the two sources at decision time).
    pub dap_decision: u64,
}

/// A consumer of per-window controller snapshots.
///
/// Implementations must be cheap and non-blocking on the caller's side —
/// the controller invokes this once per window from the simulation hot
/// loop. `&self` plus `Send + Sync` lets one sink be shared by cloned
/// controllers and inspected from other threads.
pub trait TelemetrySink: Send + Sync {
    /// Records one window-boundary snapshot.
    fn record_window(&self, snapshot: &WindowSnapshot);

    /// Records one checked-mode audit violation (see [`crate::audit`]).
    /// The default does nothing so plain recorders need no changes.
    fn record_violation(&self, violation: &crate::audit::AuditViolation) {
        let _ = violation;
    }

    /// Records one window's profiler cycle-attribution totals (emitted by
    /// the `mem-sim` access profiler, not the controller). The default
    /// does nothing so plain recorders need no changes.
    fn record_profile_window(&self, window: &ProfileWindow) {
        let _ = window;
    }
}

/// An optional shared sink, `Debug`/`Clone` so controller types keep
/// their derives without requiring `Debug` of the sink itself.
#[derive(Clone, Default)]
pub struct SinkSlot(Option<Arc<dyn TelemetrySink>>);

impl SinkSlot {
    /// An empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a sink (replacing any previous one).
    pub fn attach(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.0 = Some(sink);
    }

    /// The sink, if one is attached.
    pub fn get(&self) -> Option<&Arc<dyn TelemetrySink>> {
        self.0.as_ref()
    }

    /// Whether a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }
}

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SinkSlot(attached)"
        } else {
            "SinkSlot(none)"
        })
    }
}

/// Builds a [`SourceFractions`] from post-plan access counts and raw
/// per-source bandwidth weights. The Eq. 4 ideal is the normalized weight
/// vector, so a dark source (weight zero) gets an ideal of *exactly*
/// zero — something the rational `K` encoding cannot express. If every
/// weight is zero (all sources dark) the ideal degenerates to uniform.
fn weighted(
    sources: u8,
    after: [f64; MAX_SOURCES],
    weights: [f64; MAX_SOURCES],
) -> SourceFractions {
    let n = usize::from(sources);
    let mut ideal = [0.0; MAX_SOURCES];
    let weight_sum: f64 = weights[..n].iter().map(|w| w.max(0.0)).sum();
    if weight_sum > 0.0 {
        for i in 0..n {
            ideal[i] = weights[i].max(0.0) / weight_sum;
        }
    } else {
        for slot in ideal.iter_mut().take(n) {
            *slot = 1.0 / n as f64;
        }
    }
    let total: f64 = after[..n].iter().sum();
    let mut solved = ideal;
    if total > 0.0 {
        for i in 0..n {
            solved[i] = after[i] / total;
        }
    }
    SourceFractions {
        sources,
        solved,
        ideal,
    }
}

fn two_source(cache_after: f64, mm_after: f64, k: Ratio) -> SourceFractions {
    two_source_weighted(
        cache_after,
        mm_after,
        f64::from(k.numerator()),
        f64::from(k.denominator()),
    )
}

fn two_source_weighted(
    cache_after: f64,
    mm_after: f64,
    cache_weight: f64,
    mm_weight: f64,
) -> SourceFractions {
    weighted(
        2,
        [cache_after, mm_after, 0.0],
        [cache_weight, mm_weight, 0.0],
    )
}

fn sectored_after(stats: &WindowStats, plan: &SectoredPlan) -> (f64, f64) {
    let moved_to_mm = f64::from(plan.n_wb() + plan.n_ifrm() + plan.n_sfrm);
    let removed = f64::from(plan.n_fwb) + moved_to_mm;
    let cache_after = (f64::from(stats.cache_accesses) - removed).max(0.0);
    let mm_after = f64::from(stats.mm_accesses) + moved_to_mm;
    (cache_after, mm_after)
}

/// Post-plan fractions for the sectored (single-bus) architecture: the
/// plan removes `N_FWB + N_WB + N_IFRM + N_SFRM` accesses from the cache
/// and adds the WB/IFRM/SFRM share to main memory (a bypassed fill
/// vanishes — its read miss already paid the main-memory access).
pub fn sectored_fractions(stats: &WindowStats, plan: &SectoredPlan, k: Ratio) -> SourceFractions {
    let (cache_after, mm_after) = sectored_after(stats, plan);
    two_source(cache_after, mm_after, k)
}

/// [`sectored_fractions`] against *measured* per-source bandwidths
/// (GB/s or any common unit): the ideal is the normalized weight vector,
/// so a dark source's ideal is exactly zero.
pub fn sectored_fractions_weighted(
    stats: &WindowStats,
    plan: &SectoredPlan,
    cache_weight: f64,
    mm_weight: f64,
) -> SourceFractions {
    let (cache_after, mm_after) = sectored_after(stats, plan);
    two_source_weighted(cache_after, mm_after, cache_weight, mm_weight)
}

fn alloy_after(stats: &WindowStats, plan: &AlloyPlan) -> (f64, f64) {
    let ifrm = f64::from(plan.n_ifrm);
    let wt = f64::from(plan.n_write_through);
    let cache_after = (f64::from(stats.cache_accesses) - ifrm).max(0.0);
    let mm_after = f64::from(stats.mm_accesses) + ifrm + wt;
    (cache_after, mm_after)
}

/// Post-plan fractions for the Alloy architecture: IFRM moves reads to
/// main memory; write-through keeps the cache write and mirrors it to
/// main memory.
pub fn alloy_fractions(stats: &WindowStats, plan: &AlloyPlan, k: Ratio) -> SourceFractions {
    let (cache_after, mm_after) = alloy_after(stats, plan);
    two_source(cache_after, mm_after, k)
}

/// [`alloy_fractions`] against measured per-source bandwidth weights.
pub fn alloy_fractions_weighted(
    stats: &WindowStats,
    plan: &AlloyPlan,
    cache_weight: f64,
    mm_weight: f64,
) -> SourceFractions {
    let (cache_after, mm_after) = alloy_after(stats, plan);
    two_source_weighted(cache_after, mm_after, cache_weight, mm_weight)
}

fn edram_after(stats: &WindowStats, plan: &EdramPlan) -> [f64; MAX_SOURCES] {
    let read_after = (f64::from(stats.cache_read_accesses) - f64::from(plan.n_ifrm)).max(0.0);
    let write_after =
        (f64::from(stats.cache_write_accesses) - f64::from(plan.n_fwb + plan.n_wb)).max(0.0);
    let mm_after = f64::from(stats.mm_accesses) + f64::from(plan.n_wb + plan.n_ifrm);
    [read_after, write_after, mm_after]
}

/// Post-plan fractions for the split-channel eDRAM architecture (three
/// sources: read channels, write channels, main memory). FWB and WB
/// relieve the write channels; IFRM relieves the read channels; WB and
/// IFRM add main-memory traffic.
pub fn edram_fractions(stats: &WindowStats, plan: &EdramPlan, k: Ratio) -> SourceFractions {
    let num = f64::from(k.numerator());
    let den = f64::from(k.denominator());
    weighted(3, edram_after(stats, plan), [num, num, den])
}

/// [`edram_fractions`] against measured per-direction and main-memory
/// bandwidth weights (three sources: read channels, write channels, main
/// memory).
pub fn edram_fractions_weighted(
    stats: &WindowStats,
    plan: &EdramPlan,
    read_weight: f64,
    write_weight: f64,
    mm_weight: f64,
) -> SourceFractions {
    weighted(
        3,
        edram_after(stats, plan),
        [read_weight, write_weight, mm_weight],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn fractions_sum_to_one_and_stay_in_range() {
        let k = Ratio::new(11, 4);
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            read_misses: 6,
            writes: 10,
            clean_read_hits: 12,
            ..Default::default()
        };
        let plan = SectoredPlan {
            n_fwb: 6,
            wb_scaled: 45,
            ifrm_scaled: 30,
            n_sfrm: 2,
            k_plus_one_num: 15,
        };
        let f = sectored_fractions(&stats, &plan, k);
        assert_eq!(f.sources, 2);
        let sum: f64 = f.solved[..2].iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "Σf = {sum}");
        assert!(f.solved[..2].iter().all(|&v| (0.0..=1.0).contains(&v)));
        let ideal_sum: f64 = f.ideal[..2].iter().sum();
        assert!((ideal_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_reports_fractions_at_the_ideal() {
        let k = Ratio::new(11, 4);
        let f = sectored_fractions(&WindowStats::default(), &SectoredPlan::default(), k);
        assert_eq!(f.solved, f.ideal);
        assert!(f.max_deviation() < 1e-15);
    }

    #[test]
    fn edram_fractions_cover_three_sources() {
        let k = Ratio::new(11, 8);
        let stats = WindowStats {
            cache_read_accesses: 20,
            cache_write_accesses: 20,
            cache_accesses: 40,
            mm_accesses: 1,
            read_misses: 4,
            writes: 12,
            clean_read_hits: 15,
        };
        let plan = EdramPlan {
            n_fwb: 4,
            n_wb: 3,
            n_ifrm: 2,
        };
        let f = edram_fractions(&stats, &plan, k);
        assert_eq!(f.sources, 3);
        let sum: f64 = f.solved.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let ideal_sum: f64 = f.ideal.iter().sum();
        assert!((ideal_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_moves_solved_fractions_toward_ideal() {
        let k = Ratio::new(11, 4);
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            ..Default::default()
        };
        let idle = SectoredPlan::default();
        let active = SectoredPlan {
            n_fwb: 4,
            wb_scaled: 60,
            ifrm_scaled: 30,
            n_sfrm: 1,
            k_plus_one_num: 15,
        };
        let before = sectored_fractions(&stats, &idle, k);
        let after = sectored_fractions(&stats, &active, k);
        assert!(after.max_deviation() < before.max_deviation());
    }

    #[test]
    fn weighted_ideal_zeroes_a_dark_source() {
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            ..Default::default()
        };
        let f = sectored_fractions_weighted(&stats, &SectoredPlan::default(), 0.0, 38.4);
        assert_eq!(f.ideal[0], 0.0, "dark cache must get ideal exactly 0");
        assert!((f.ideal[1] - 1.0).abs() < 1e-12);
        let f = edram_fractions_weighted(&stats, &EdramPlan::default(), 51.2, 51.2, 0.0);
        assert_eq!(f.ideal[2], 0.0, "dark mm must get ideal exactly 0");
        assert!((f.ideal.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_matches_k_form_for_nominal_rates() {
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            ..Default::default()
        };
        let plan = SectoredPlan {
            n_fwb: 3,
            wb_scaled: 30,
            ifrm_scaled: 15,
            n_sfrm: 1,
            k_plus_one_num: 15,
        };
        let by_k = sectored_fractions(&stats, &plan, Ratio::new(11, 4));
        let by_w = sectored_fractions_weighted(&stats, &plan, 11.0, 4.0);
        assert_eq!(by_k, by_w);
    }

    #[test]
    fn all_dark_degenerates_to_uniform_ideal() {
        let f = sectored_fractions_weighted(
            &WindowStats::default(),
            &SectoredPlan::default(),
            0.0,
            0.0,
        );
        assert!((f.ideal[0] - 0.5).abs() < 1e-12);
        assert!((f.ideal[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sink_slot_attaches_and_reports() {
        struct Collect(Mutex<Vec<u64>>);
        impl TelemetrySink for Collect {
            fn record_window(&self, s: &WindowSnapshot) {
                self.0.lock().unwrap().push(s.window_index);
            }
        }
        let mut slot = SinkSlot::new();
        assert!(!slot.is_attached());
        assert_eq!(format!("{slot:?}"), "SinkSlot(none)");
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        slot.attach(sink.clone());
        assert!(slot.is_attached());
        assert_eq!(format!("{slot:?}"), "SinkSlot(attached)");
        let snap = WindowSnapshot {
            window_index: 7,
            end_cycle: 512,
            stats: WindowStats::default(),
            partitioned: false,
            granted: TechniqueCounts::default(),
            applied: TechniqueCounts::default(),
            fractions: sectored_fractions(
                &WindowStats::default(),
                &SectoredPlan::default(),
                Ratio::new(11, 4),
            ),
        };
        slot.get().unwrap().record_window(&snap);
        assert_eq!(*sink.0.lock().unwrap(), vec![7]);
    }
}
