//! # dap-core — Dynamic Access Partitioning
//!
//! This crate implements the primary contribution of *“Near-Optimal Access
//! Partitioning for Memory Hierarchies with Multiple Heterogeneous Bandwidth
//! Sources”* (HPCA 2017): the analytical bandwidth model of Section III and
//! the DAP hardware algorithm of Section IV, for all three memory-side cache
//! architectures the paper evaluates (sectored DRAM cache, Alloy cache, and
//! sectored eDRAM cache).
//!
//! The crate is deliberately free of any simulator dependency: everything
//! here operates on per-window access counts and produces *partition plans*
//! (how many Fill Write Bypasses, Write Bypasses, Informed/Speculative Forced
//! Read Misses to perform in the next window). A memory-system simulator —
//! such as the `mem-sim` crate in this workspace — feeds observations in and
//! consumes credits out.
//!
//! ## The bandwidth equation
//!
//! For `n` parallel bandwidth sources with bandwidths `B_i` (accesses per
//! cycle) serving fractions `f_i` of the accesses, the delivered bandwidth is
//!
//! ```text
//! B = min(B_1/f_1, B_2/f_2, ..., B_n/f_n)          (Eq. 2)
//! ```
//!
//! which is maximized — at `sum(B_i)` — exactly when accesses are distributed
//! in proportion to source bandwidths, `B_1/f_1 = ... = B_n/f_n` (Eq. 4).
//! [`bandwidth`] implements this model; the solvers in [`sectored`],
//! [`alloy`], and [`edram`] chase that optimum dynamically, one observation
//! window at a time.
//!
//! ## Quick example
//!
//! ```
//! use dap_core::{DapConfig, DapController, Technique, WindowStats};
//!
//! // 102.4 GB/s HBM cache + 38.4 GB/s DDR4, 64-cycle windows @4 GHz, E=0.75.
//! let config = DapConfig::hbm_ddr4();
//! let mut dap = DapController::new(config);
//!
//! // Pretend the previous window saw heavy cache pressure:
//! let stats = WindowStats {
//!     cache_accesses: 40,
//!     mm_accesses: 2,
//!     read_misses: 6,
//!     writes: 10,
//!     clean_read_hits: 12,
//!     ..WindowStats::default()
//! };
//! dap.end_window_with(&stats);
//!
//! // The next window can now consume partitioning credits:
//! assert!(dap.try_apply(Technique::FillWriteBypass));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod controller;
pub mod telemetry;

// The pure decision arithmetic now lives in the allocation-light
// `dap-decide` crate so it can be embedded outside the simulator (the
// `dapd` daemon, firmware, `no_std` targets). Re-exported module-by-module
// so every historical `dap_core::<module>::...` path keeps resolving.
pub use dap_decide::{alloy, bandwidth, config, credits, degrade, edram, ratio, sectored, window};

pub use alloy::{AlloyDapSolver, AlloyPlan};
pub use audit::{AuditError, AuditMode, AuditReport, AuditViolation, Invariant, WindowAuditor};
pub use bandwidth::{
    delivered_bandwidth, optimal_fractions, read_kernel_bandwidth, BandwidthSource, SystemBandwidth,
};
pub use controller::{CacheArchitecture, DapConfig, DapController, DecisionStats, Technique};
pub use credits::{CreditBank, CreditCounter, ScaledCreditCounter};
pub use degrade::{degraded_k, EffectiveBandwidth};
pub use edram::{EdramDapSolver, EdramPlan};
pub use ratio::Ratio;
pub use sectored::{SectoredDapSolver, SectoredPlan};
pub use telemetry::{
    ProfileWindow, SourceFractions, TechniqueCounts, TelemetrySink, WindowSnapshot,
};
pub use window::{WindowBudget, WindowStats};
