//! The runtime DAP controller.
//!
//! [`DapController`] is the piece a memory controller instantiates: it
//! accumulates per-window access counts, re-solves the partition at every
//! window boundary, loads the credit counters, and answers "may I apply
//! technique X right now?" queries on the datapath.

use std::sync::Arc;

use crate::alloy::AlloyDapSolver;
use crate::audit::{self, AuditMode, AuditReport, WindowAuditor};
use crate::credits::{CreditBank, CreditCounter};
use crate::degrade::EffectiveBandwidth;
use crate::edram::EdramDapSolver;
use crate::sectored::SectoredDapSolver;
use crate::telemetry::{
    alloy_fractions, alloy_fractions_weighted, edram_fractions, edram_fractions_weighted,
    sectored_fractions, sectored_fractions_weighted, SinkSlot, SourceFractions, TechniqueCounts,
    TelemetrySink, WindowSnapshot,
};
use crate::window::{WindowBudget, WindowStats};

pub use dap_decide::config::{CacheArchitecture, DapConfig, DecisionStats, Technique};

/// The runtime DAP mechanism: observation counters + solver + credit bank.
#[derive(Debug, Clone)]
pub struct DapController {
    config: DapConfig,
    budget: WindowBudget,
    current: WindowStats,
    credits: CreditBank,
    write_through: CreditCounter,
    next_boundary: u64,
    decisions: DecisionStats,
    last_plan_idle: bool,
    sink: SinkSlot,
    window_index: u64,
    /// Decision totals at the previous window boundary, for computing the
    /// per-window applied counts handed to the telemetry sink.
    decisions_at_last_boundary: DecisionStats,
    /// The measured bandwidth the budget was last derived from; `None`
    /// means the nominal config rates are in effect.
    effective: Option<EffectiveBandwidth>,
    /// Checked-mode invariant auditor (`None` when auditing is off).
    auditor: Option<Box<WindowAuditor>>,
    /// Test seam: report a deliberately wrong Eq. 4 ideal at every
    /// boundary, proving the auditor catches a broken solver end to end.
    break_solver: bool,
}

impl DapController {
    /// Creates a controller; the first window starts at cycle zero.
    /// Checked mode follows [`audit::default_mode`] (strict in debug
    /// builds, `DAP_AUDIT`/`--audit` elsewhere).
    pub fn new(config: DapConfig) -> Self {
        Self::with_audit(config, audit::default_mode())
    }

    /// Creates a controller with an explicit audit mode, bypassing the
    /// process-wide default.
    pub fn with_audit(config: DapConfig, mode: AuditMode) -> Self {
        let budget = config.budget();
        Self {
            config,
            budget,
            current: WindowStats::default(),
            credits: CreditBank::new(budget.k),
            write_through: CreditCounter::new(),
            next_boundary: u64::from(config.window_cycles),
            decisions: DecisionStats::default(),
            last_plan_idle: true,
            sink: SinkSlot::new(),
            window_index: 0,
            decisions_at_last_boundary: DecisionStats::default(),
            effective: None,
            auditor: WindowAuditor::new(mode),
            break_solver: false,
        }
    }

    /// Makes every subsequent window boundary report a deliberately
    /// non-proportional Eq. 4 ideal (the fractions still sum to 1, so
    /// only the proportionality invariant can fire). Exists so tests can
    /// prove a broken solver is caught with the right equation
    /// reference; never call it outside a test.
    #[doc(hidden)]
    pub fn break_solver_for_test(&mut self) {
        self.break_solver = true;
    }

    /// The checked-mode report accumulated so far (`None` when auditing
    /// is off).
    pub fn audit_report(&self) -> Option<&AuditReport> {
        self.auditor.as_deref().map(WindowAuditor::report)
    }

    /// Lifetime `(cache, mm)` access totals the controller has observed,
    /// when auditing is on — the simulator's channel accounting uses
    /// this for the cross-layer served-access conservation check.
    pub fn audited_totals(&self) -> Option<(u64, u64)> {
        self.auditor.as_deref().map(WindowAuditor::noted_totals)
    }

    /// Installs (or clears, with `None`) a measured-bandwidth input.
    ///
    /// When the resulting budget differs from the one in effect, the
    /// window budget — including `K = B_MS$ / B_MM` — is re-derived so
    /// every subsequent window boundary solves Eq. 4 against *delivered*
    /// rather than nominal bandwidth, and the credit bank is rebuilt
    /// around the new `K`. Rebuilding empties every counter: a source
    /// that just went dark *drains* its outstanding credits instead of
    /// letting the datapath keep steering traffic at a dead device. A
    /// call that does not change the budget (same measurement, or a
    /// change too small to move the integer budgets) is free.
    pub fn set_effective_bandwidth(&mut self, effective: Option<EffectiveBandwidth>) {
        let budget = match &effective {
            Some(e) => e.budget(&self.config),
            None => self.config.budget(),
        };
        self.effective = effective;
        if budget != self.budget {
            self.decisions.bandwidth_resolves += 1;
            self.credits = CreditBank::new(budget.k);
            self.write_through.clear();
            self.budget = budget;
        }
    }

    /// The measured-bandwidth input currently in effect, if any.
    pub fn effective_bandwidth(&self) -> Option<&EffectiveBandwidth> {
        self.effective.as_ref()
    }

    /// How many times a measured-bandwidth change re-derived the budget.
    pub fn bandwidth_resolves(&self) -> u64 {
        self.decisions.bandwidth_resolves
    }

    /// Attaches a telemetry sink; every subsequent window boundary emits a
    /// [`WindowSnapshot`]. Without a sink the controller skips all snapshot
    /// assembly (one branch per window).
    pub fn attach_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink.attach(sink);
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &DapConfig {
        &self.config
    }

    /// The derived per-window budgets.
    pub fn budget(&self) -> &WindowBudget {
        &self.budget
    }

    /// Lifetime decision statistics.
    pub fn decisions(&self) -> &DecisionStats {
        &self.decisions
    }

    /// Whether the most recent solve produced no partitioning.
    pub fn is_partitioning(&self) -> bool {
        !self.last_plan_idle
    }

    /// Records an access demanded from the memory-side cache (`A_MS$`).
    /// For split-channel caches pass the direction; single-bus caches may
    /// pass either.
    pub fn note_cache_access(&mut self, is_write: bool) {
        self.current.cache_accesses += 1;
        if is_write {
            self.current.cache_write_accesses += 1;
        } else {
            self.current.cache_read_accesses += 1;
        }
        if let Some(auditor) = &mut self.auditor {
            auditor.note_cache_access();
        }
    }

    /// Records an access demanded from main memory (`A_MM`).
    pub fn note_mm_access(&mut self) {
        self.current.mm_accesses += 1;
        if let Some(auditor) = &mut self.auditor {
            auditor.note_mm_access();
        }
    }

    /// Records a read miss in the memory-side cache (`Rm`).
    pub fn note_read_miss(&mut self) {
        self.current.read_misses += 1;
    }

    /// Records a write arriving at the memory-side cache (`Wm`).
    pub fn note_write(&mut self) {
        self.current.writes += 1;
    }

    /// Records a read hit to a clean line (or, for Alloy, a read whose DBC
    /// lookup found a non-dirty set) — an IFRM candidate.
    pub fn note_clean_read_hit(&mut self) {
        self.current.clean_read_hits += 1;
    }

    /// Advances time; at window boundaries, solves and reloads credits.
    /// Call with a monotonically non-decreasing cycle count.
    pub fn tick(&mut self, now_cycle: u64) {
        let w = u64::from(self.config.window_cycles);
        // A caller stalled on a faulted device can next touch the
        // controller astronomically late (an access deferred toward the
        // fault horizon). The windows in between are empty, and one
        // empty end_window() already applies the full idle transition
        // (credits cleared, idle plan recorded), so beyond a threshold
        // no real run ever crosses, the repeats are folded into the
        // window counter instead of being stepped one by one.
        const IDLE_FOLD_WINDOWS: u64 = 1 << 20;
        if now_cycle >= self.next_boundary {
            let pending = (now_cycle - self.next_boundary) / w + 1;
            if pending > IDLE_FOLD_WINDOWS {
                self.end_window(); // the window holding the observed stats
                self.decisions.windows_total += pending - 2;
                self.next_boundary += (pending - 1) * w;
            }
        }
        while now_cycle >= self.next_boundary {
            self.end_window();
            self.next_boundary += w;
        }
    }

    /// Ends the current window immediately: solve, reload credits, reset
    /// the observation counters.
    pub fn end_window(&mut self) {
        let stats = std::mem::take(&mut self.current);
        self.boundary(&stats);
    }

    /// Ends a window using externally collected statistics (useful in tests
    /// and in simulators that keep their own counters). Bypassing the
    /// `note_*` counters disables the auditor's served-access conservation
    /// check, which is only meaningful for internally accumulated stats.
    pub fn end_window_with(&mut self, stats: &WindowStats) {
        if let Some(auditor) = &mut self.auditor {
            auditor.note_external_stats();
        }
        self.boundary(stats);
    }

    fn boundary(&mut self, stats: &WindowStats) {
        self.decisions.windows_total += 1;
        // Snapshot assembly (granted counts + solved fractions) happens
        // only when a sink or the auditor consumes it; the solve itself
        // is always needed.
        let traced = self.sink.is_attached() || self.auditor.is_some();
        let mut granted = TechniqueCounts::default();
        let mut fractions: Option<SourceFractions> = None;
        let mut weights = [0.0f64; crate::telemetry::MAX_SOURCES];
        match self.config.architecture {
            CacheArchitecture::SingleBus => {
                let plan = SectoredDapSolver::new(self.budget).solve(stats);
                self.last_plan_idle = plan.is_idle();
                if plan.is_idle() {
                    self.credits.clear();
                } else {
                    self.decisions.windows_partitioned += 1;
                    self.credits.fwb.refill(plan.n_fwb);
                    self.credits.wb.refill_scaled(plan.wb_scaled);
                    self.credits.ifrm.refill_scaled(plan.ifrm_scaled);
                    self.credits.sfrm.refill(plan.n_sfrm);
                }
                if traced {
                    granted = TechniqueCounts {
                        fwb: plan.n_fwb,
                        wb: plan.n_wb(),
                        ifrm: plan.n_ifrm(),
                        sfrm: plan.n_sfrm,
                        write_through: 0,
                    };
                    fractions = Some(match &self.effective {
                        Some(e) => {
                            weights = [e.cache_gbps, e.mm_gbps, 0.0];
                            sectored_fractions_weighted(stats, &plan, e.cache_gbps, e.mm_gbps)
                        }
                        None => {
                            let k = self.budget.k;
                            weights = [f64::from(k.numerator()), f64::from(k.denominator()), 0.0];
                            sectored_fractions(stats, &plan, k)
                        }
                    });
                }
            }
            CacheArchitecture::Alloy => {
                let plan = AlloyDapSolver::new(self.budget).solve(stats);
                self.last_plan_idle = plan.is_idle();
                if plan.n_ifrm == 0 {
                    self.credits.ifrm.clear();
                } else {
                    self.decisions.windows_partitioned += 1;
                    self.credits.ifrm.refill_applications(plan.n_ifrm);
                }
                if plan.n_write_through == 0 {
                    self.write_through.clear();
                } else {
                    self.write_through.refill(plan.n_write_through);
                }
                if traced {
                    granted = TechniqueCounts {
                        ifrm: plan.n_ifrm,
                        write_through: plan.n_write_through,
                        ..TechniqueCounts::default()
                    };
                    fractions = Some(match &self.effective {
                        Some(e) => {
                            weights = [e.cache_gbps, e.mm_gbps, 0.0];
                            alloy_fractions_weighted(stats, &plan, e.cache_gbps, e.mm_gbps)
                        }
                        None => {
                            let k = self.budget.k;
                            weights = [f64::from(k.numerator()), f64::from(k.denominator()), 0.0];
                            alloy_fractions(stats, &plan, k)
                        }
                    });
                }
            }
            CacheArchitecture::SplitChannel => {
                let plan = EdramDapSolver::new(self.budget).solve(stats);
                self.last_plan_idle = plan.is_idle();
                if plan.is_idle() {
                    self.credits.clear();
                } else {
                    self.decisions.windows_partitioned += 1;
                    self.credits.fwb.refill(plan.n_fwb);
                    self.credits.wb.refill_applications(plan.n_wb);
                    self.credits.ifrm.refill_applications(plan.n_ifrm);
                }
                if traced {
                    granted = TechniqueCounts {
                        fwb: plan.n_fwb,
                        wb: plan.n_wb,
                        ifrm: plan.n_ifrm,
                        sfrm: 0,
                        write_through: 0,
                    };
                    fractions = Some(match &self.effective {
                        Some(e) => {
                            let dir = e.split_channel_gbps.unwrap_or(e.cache_gbps);
                            weights = [dir, dir, e.mm_gbps];
                            edram_fractions_weighted(stats, &plan, dir, dir, e.mm_gbps)
                        }
                        None => {
                            let k = self.budget.k;
                            let num = f64::from(k.numerator());
                            weights = [num, num, f64::from(k.denominator())];
                            edram_fractions(stats, &plan, k)
                        }
                    });
                }
            }
        }
        let index = self.window_index;
        self.window_index += 1;
        // Every arch arm above fills `fractions` exactly when `traced`;
        // the let-else (rather than an `expect`) keeps the non-traced
        // path panic-free.
        let Some(mut fractions) = fractions else {
            return;
        };
        debug_assert!(traced);
        if self.break_solver {
            // Swapping the first two ideal entries keeps Σf = 1 while
            // breaking proportionality whenever the sources differ.
            fractions.ideal.swap(0, 1);
        }
        let d = &self.decisions;
        let p = &self.decisions_at_last_boundary;
        let applied = TechniqueCounts {
            fwb: (d.fwb - p.fwb) as u32,
            wb: (d.wb - p.wb) as u32,
            ifrm: (d.ifrm - p.ifrm) as u32,
            sfrm: (d.sfrm - p.sfrm) as u32,
            write_through: (d.write_through - p.write_through) as u32,
        };
        self.decisions_at_last_boundary = self.decisions;
        let snapshot = WindowSnapshot {
            window_index: index,
            end_cycle: (index + 1) * u64::from(self.config.window_cycles),
            stats: *stats,
            partitioned: !self.last_plan_idle,
            granted,
            applied,
            fractions,
        };
        if let Some(auditor) = &mut self.auditor {
            // In strict mode a violation panics inside check_window; in
            // observe mode the violations come back for the sink.
            let violations = auditor.check_window(&snapshot, weights);
            if let Some(sink) = self.sink.get() {
                for violation in &violations {
                    sink.record_violation(violation);
                }
            }
        }
        if let Some(sink) = self.sink.get() {
            sink.record_window(&snapshot);
        }
    }

    /// Attempts to apply a technique; consumes one credit and bumps the
    /// decision statistics on success.
    pub fn try_apply(&mut self, technique: Technique) -> bool {
        let ok = match technique {
            Technique::FillWriteBypass => self.credits.fwb.try_consume(),
            Technique::WriteBypass => self.credits.wb.try_consume(),
            Technique::InformedForcedReadMiss => self.credits.ifrm.try_consume(),
            Technique::SpeculativeForcedReadMiss => self.credits.sfrm.try_consume(),
            Technique::WriteThrough => self.write_through.try_consume(),
        };
        if ok {
            match technique {
                Technique::FillWriteBypass => self.decisions.fwb += 1,
                Technique::WriteBypass => self.decisions.wb += 1,
                Technique::InformedForcedReadMiss => self.decisions.ifrm += 1,
                Technique::SpeculativeForcedReadMiss => self.decisions.sfrm += 1,
                Technique::WriteThrough => self.decisions.write_through += 1,
            }
        }
        ok
    }

    /// Remaining credits for a technique (diagnostics).
    pub fn credits_remaining(&self, technique: Technique) -> u32 {
        match technique {
            Technique::FillWriteBypass => self.credits.fwb.remaining(),
            Technique::WriteBypass => self.credits.wb.remaining_applications(),
            Technique::InformedForcedReadMiss => self.credits.ifrm.remaining_applications(),
            Technique::SpeculativeForcedReadMiss => self.credits.sfrm.remaining(),
            Technique::WriteThrough => self.write_through.remaining(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressured_stats() -> WindowStats {
        WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            read_misses: 6,
            writes: 10,
            clean_read_hits: 12,
            ..Default::default()
        }
    }

    #[test]
    fn window_boundary_triggers_solve() {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        for _ in 0..40 {
            dap.note_cache_access(false);
        }
        for _ in 0..6 {
            dap.note_read_miss();
        }
        dap.note_mm_access();
        dap.note_mm_access();
        assert!(
            !dap.try_apply(Technique::FillWriteBypass),
            "no credits before boundary"
        );
        dap.tick(64);
        assert!(dap.try_apply(Technique::FillWriteBypass));
    }

    #[test]
    fn tick_catches_up_over_multiple_windows() {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        dap.tick(64 * 10);
        assert_eq!(dap.decisions().windows_total, 10);
    }

    #[test]
    fn idle_plan_clears_stale_credits() {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        dap.end_window_with(&pressured_stats());
        assert!(dap.credits_remaining(Technique::FillWriteBypass) > 0);
        // A calm window follows: everything is cleared.
        dap.end_window_with(&WindowStats::default());
        for t in Technique::ALL {
            assert_eq!(dap.credits_remaining(t), 0, "{t:?} should be cleared");
        }
    }

    #[test]
    fn decisions_accumulate() {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        dap.end_window_with(&pressured_stats());
        while dap.try_apply(Technique::FillWriteBypass) {}
        while dap.try_apply(Technique::WriteBypass) {}
        let d = *dap.decisions();
        assert!(d.fwb > 0);
        assert!(d.wb > 0);
        assert_eq!(d.total_decisions(), d.fwb + d.wb);
        let mix = d.mix();
        assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alloy_controller_uses_ifrm_and_write_through() {
        let mut dap = DapController::new(DapConfig::alloy_hbm_ddr4());
        let stats = WindowStats {
            cache_accesses: 30,
            mm_accesses: 1,
            writes: 10,
            clean_read_hits: 3,
            ..Default::default()
        };
        dap.end_window_with(&stats);
        assert!(dap.try_apply(Technique::InformedForcedReadMiss));
        assert!(dap.try_apply(Technique::WriteThrough));
        assert!(
            !dap.try_apply(Technique::FillWriteBypass),
            "alloy never does FWB credits"
        );
    }

    #[test]
    fn edram_controller_routes_split_channels() {
        let mut dap = DapController::new(DapConfig::edram_ddr4());
        let stats = WindowStats {
            cache_read_accesses: 20,
            cache_write_accesses: 3,
            cache_accesses: 23,
            mm_accesses: 2,
            read_misses: 5,
            writes: 5,
            clean_read_hits: 15,
        };
        dap.end_window_with(&stats);
        assert!(dap.try_apply(Technique::InformedForcedReadMiss));
        assert!(
            !dap.try_apply(Technique::SpeculativeForcedReadMiss),
            "eDRAM has on-die tags"
        );
    }

    #[test]
    fn note_methods_feed_window_stats() {
        let mut dap = DapController::new(DapConfig::edram_ddr4());
        for _ in 0..20 {
            dap.note_cache_access(false);
            dap.note_clean_read_hit();
        }
        dap.note_cache_access(true);
        dap.note_mm_access();
        dap.end_window();
        // Read channel pressure (20 > 9) should produce IFRM credits.
        assert!(dap.credits_remaining(Technique::InformedForcedReadMiss) > 0);
    }

    #[test]
    fn degraded_bandwidth_rebuilds_budget_and_drains_credits() {
        let config = DapConfig::hbm_ddr4();
        let mut dap = DapController::new(config);
        dap.end_window_with(&pressured_stats());
        assert!(dap.credits_remaining(Technique::FillWriteBypass) > 0);
        // Cache throttled to half rate: budget shrinks, K halves, and the
        // rebuilt credit bank starts empty.
        dap.set_effective_bandwidth(Some(EffectiveBandwidth::scaled(&config, 0.5, 1.0)));
        assert_eq!(dap.bandwidth_resolves(), 1);
        assert_eq!(dap.budget().cache_budget, 9);
        for t in Technique::ALL {
            assert_eq!(dap.credits_remaining(t), 0, "{t:?} must be drained");
        }
        // Restoring nominal bandwidth re-derives the original budget.
        dap.set_effective_bandwidth(None);
        assert_eq!(dap.bandwidth_resolves(), 2);
        assert_eq!(*dap.budget(), config.budget());
    }

    #[test]
    fn unchanged_measurement_does_not_count_as_resolve() {
        let config = DapConfig::hbm_ddr4();
        let mut dap = DapController::new(config);
        dap.set_effective_bandwidth(Some(EffectiveBandwidth::nominal(&config)));
        assert_eq!(
            dap.bandwidth_resolves(),
            0,
            "nominal rates leave the budget alone"
        );
    }

    #[test]
    fn dark_mm_grants_nothing_mm_bound() {
        let config = DapConfig::hbm_ddr4();
        let mut dap = DapController::new(config);
        dap.set_effective_bandwidth(Some(EffectiveBandwidth::scaled(&config, 1.0, 0.0)));
        dap.end_window_with(&pressured_stats());
        // With main memory dark there is no headroom to move anything to
        // it: WB / IFRM / SFRM must all stay at zero.
        assert_eq!(dap.credits_remaining(Technique::WriteBypass), 0);
        assert_eq!(dap.credits_remaining(Technique::InformedForcedReadMiss), 0);
        assert_eq!(
            dap.credits_remaining(Technique::SpeculativeForcedReadMiss),
            0
        );
    }

    #[test]
    fn dark_cache_steers_everything_to_mm() {
        let config = DapConfig::hbm_ddr4();
        let mut dap = DapController::new(config);
        dap.set_effective_bandwidth(Some(EffectiveBandwidth::scaled(&config, 0.0, 1.0)));
        dap.end_window_with(&pressured_stats());
        // A dark cache makes every fill droppable and every write/clean
        // hit a candidate to move, bounded by mm headroom.
        assert!(dap.credits_remaining(Technique::FillWriteBypass) > 0);
        assert!(
            dap.credits_remaining(Technique::WriteBypass) > 0
                || dap.credits_remaining(Technique::InformedForcedReadMiss) > 0
        );
    }

    #[test]
    fn partitioning_flag_tracks_last_plan() {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        assert!(!dap.is_partitioning());
        dap.end_window_with(&pressured_stats());
        assert!(dap.is_partitioning());
        dap.end_window_with(&WindowStats::default());
        assert!(!dap.is_partitioning());
    }
}
