//! Property-style tests for the DAP analytical model and window solvers.
//!
//! Hermetic replacement for the former `proptest` suite: each property is
//! a loop over cases drawn from the in-tree seeded PRNG
//! ([`workloads::rng::SplitMix64`]), so the exact case set is fixed
//! forever and reproduces identically offline on every platform.

use dap_core::{
    delivered_bandwidth, optimal_fractions, AlloyDapSolver, BandwidthSource, DapConfig,
    DapController, EdramDapSolver, Ratio, ScaledCreditCounter, SectoredDapSolver, Technique,
    WindowBudget, WindowStats,
};
use workloads::rng::SplitMix64;

const CASES: u64 = 256;

fn sources(rng: &mut SplitMix64, n: usize) -> Vec<BandwidthSource> {
    (0..n)
        .map(|i| BandwidthSource::from_gbps(format!("s{i}"), rng.range_f64(0.5, 500.0)))
        .collect()
}

/// Eq. 3: no partition delivers more than the optimal one.
#[test]
fn optimal_partition_dominates() {
    let mut rng = SplitMix64::new(0xDA9_0001);
    for _ in 0..CASES {
        let srcs = sources(&mut rng, 3);
        let raw: Vec<f64> = (0..3).map(|_| rng.range_f64(0.01, 1.0)).collect();
        let sum: f64 = raw.iter().sum();
        let fractions: Vec<f64> = raw.iter().map(|r| r / sum).collect();
        let opt = optimal_fractions(&srcs);
        let b_any = delivered_bandwidth(&srcs, &fractions);
        let b_opt = delivered_bandwidth(&srcs, &opt);
        assert!(
            b_any <= b_opt * (1.0 + 1e-9),
            "partition {fractions:?} beat the optimum: {b_any} > {b_opt}"
        );
    }
}

/// Eq. 3: the optimum equals the sum of source bandwidths.
#[test]
fn optimum_is_sum_of_bandwidths() {
    let mut rng = SplitMix64::new(0xDA9_0002);
    for _ in 0..CASES {
        let srcs = sources(&mut rng, 4);
        let opt = optimal_fractions(&srcs);
        let b_opt = delivered_bandwidth(&srcs, &opt);
        let total: f64 = srcs.iter().map(|s| s.accesses_per_sec()).sum();
        assert!((b_opt - total).abs() / total < 1e-9);
    }
}

/// Ratio approximation stays within 5% whenever a denominator <= 16
/// suffices, and multiplication floors correctly.
#[test]
fn ratio_approximation_is_tight() {
    let mut rng = SplitMix64::new(0xDA9_0003);
    for _ in 0..CASES {
        let k = rng.range_f64(0.1, 16.0);
        let x = rng.below(10_000);
        let r = Ratio::approximate(k);
        let exact = (x as f64) * r.as_f64();
        assert_eq!(r.mul_int(x), exact.floor() as u64);
    }
}

/// `mul_int`/`mul_i64` at the overflow boundary: for inputs pushed up
/// against `u64::MAX` (and down against `i64::MIN`), the widened product
/// matches exact 128-bit arithmetic, saturates at the register limits
/// instead of wrapping, and stays monotone through the saturation point.
#[test]
fn ratio_mul_saturates_exactly_at_overflow_boundaries() {
    let mut rng = SplitMix64::new(0xDA9_000C);
    for _ in 0..CASES {
        let den = 1u32 << rng.index(5);
        let num = rng.range_u64(1, 5_000) as u32;
        let r = Ratio::new(num, den);
        let x = u64::MAX - rng.below(1 << 16);
        let exact = u128::from(x) * u128::from(num) / u128::from(den);
        let expected = u64::try_from(exact).unwrap_or(u64::MAX);
        assert_eq!(r.mul_int(x), expected, "{r} * {x}");
        assert!(r.mul_int(x - 1) <= r.mul_int(x), "{r} not monotone at {x}");
        let xi = i64::MIN + rng.below(1 << 16) as i64;
        let floor = (i128::from(xi) * i128::from(num)).div_euclid(i128::from(den));
        let expected_i = i64::try_from(floor).unwrap_or(i64::MIN);
        assert_eq!(r.mul_i64(xi), expected_i, "{r} * {xi}");
    }
}

/// Re-approximating a ratio's own value is a pure reduction: the value
/// stays within the 5% tolerance, the denominator never grows (it can
/// only reduce, e.g. 4/16 -> 1/4), and walking the reduction ladder
/// reaches an exact fixed point — so repeated K-derivations (e.g. after
/// a bandwidth re-measurement landing on the same figure) cannot drift.
#[test]
fn ratio_reduction_is_idempotent() {
    let mut rng = SplitMix64::new(0xDA9_000D);
    for _ in 0..CASES {
        let k = rng.range_f64(0.1, 32.0);
        let once = Ratio::approximate(k);
        let twice = Ratio::approximate(once.as_f64());
        assert!(
            twice.denominator() <= once.denominator(),
            "re-approximating {k} grew {once} to {twice}"
        );
        let drift = (twice.as_f64() - once.as_f64()).abs() / once.as_f64();
        assert!(drift <= 0.05, "{once} drifted to {twice} ({drift:.4})");
        // The denominator ladder (16, 8, 4, 2, 1) bounds the walk.
        let mut current = twice;
        for _ in 0..5 {
            let next = Ratio::approximate(current.as_f64());
            if (next.numerator(), next.denominator())
                == (current.numerator(), current.denominator())
            {
                break;
            }
            assert!(next.denominator() < current.denominator());
            current = next;
        }
        let fixed = Ratio::approximate(current.as_f64());
        assert_eq!(
            (fixed.numerator(), fixed.denominator()),
            (current.numerator(), current.denominator()),
            "no reduction fixed point for {k}"
        );
    }
}

/// The credit-counter scaling round-trips: the `(K+1)` and `(2K+1)`
/// scaled factors recover the numerator exactly, `floor(x*(K+1)) = x +
/// floor(x*K)` holds for any count, and a scaled refill of
/// `den*(K+1)*n` yields exactly `n` consumable applications.
#[test]
fn credit_counter_scaling_round_trips() {
    let mut rng = SplitMix64::new(0xDA9_000E);
    for _ in 0..CASES {
        let den = 1u32 << rng.index(5);
        let num = rng.range_u64(1, 64) as u32;
        let r = Ratio::new(num, den);
        assert_eq!(r.plus_one_num() - r.denominator(), r.numerator());
        assert_eq!(r.twice_plus_one_num() - r.denominator(), 2 * r.numerator());
        let x = rng.below(1_000_000);
        let k_plus_one = Ratio::new(r.plus_one_num(), den);
        assert_eq!(k_plus_one.mul_int(x), x + r.mul_int(x), "{r} at x = {x}");
        let n = rng.below(64) as u32;
        let mut counter = ScaledCreditCounter::new(r);
        counter.refill_scaled(n * r.plus_one_num());
        assert_eq!(counter.remaining_applications(), n, "{r} with n = {n}");
        let mut consumed = 0;
        while counter.try_consume() {
            consumed += 1;
        }
        assert_eq!(consumed, n);
    }
}

/// The sectored solver never plans more work than exists: FWB <= fills,
/// WB <= writes, IFRM <= clean hits, and everything is non-negative.
#[test]
fn sectored_plan_respects_caps() {
    let mut rng = SplitMix64::new(0xDA9_0004);
    let windows = [32u32, 64, 128];
    let efficiencies = [0.5f64, 0.75, 1.0];
    for _ in 0..CASES {
        let cache = rng.below(2000) as u32;
        let mm = rng.below(500) as u32;
        let rm = rng.below(300) as u32;
        let wm = rng.below(300) as u32;
        let clean = rng.below(300) as u32;
        let w = windows[rng.index(windows.len())];
        let e = efficiencies[rng.index(efficiencies.len())];
        let budget = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, w, e);
        let solver = SectoredDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm.min(cache),
            writes: wm.min(cache),
            clean_read_hits: clean.min(cache),
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        assert!(plan.n_fwb <= stats.read_misses || plan.n_fwb <= cache);
        assert!(plan.n_wb() <= stats.writes);
        assert!(plan.n_ifrm() <= stats.clean_read_hits);
        // FWB never exceeds the partitioning actually needed.
        let needed = cache.saturating_sub(budget.cache_budget);
        assert!(plan.n_fwb <= needed.max(stats.read_misses));
    }
}

/// The sectored solver is quiet when the cache is under budget.
#[test]
fn sectored_solver_quiet_under_budget() {
    let mut rng = SplitMix64::new(0xDA9_0005);
    for _ in 0..CASES {
        let cache = rng.below(19) as u32;
        let mm = rng.below(500) as u32;
        let rm = rng.below(300) as u32;
        let budget = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        let solver = SectoredDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm,
            ..Default::default()
        };
        assert!(solver.solve(&stats).is_idle());
    }
}

/// Applying the sectored plan moves the cache:MM access ratio toward K
/// (never past overshooting in the wrong direction).
#[test]
fn sectored_plan_moves_ratio_toward_k() {
    let mut rng = SplitMix64::new(0xDA9_0006);
    for _ in 0..CASES {
        let cache = rng.range_u64(25, 2000) as u32;
        let mm = rng.range_u64(1, 100) as u32;
        let rm = rng.below(300) as u32;
        let wm = rng.below(300) as u32;
        let clean = rng.below(300) as u32;
        let budget = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        let solver = SectoredDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm.min(cache / 4),
            writes: wm.min(cache / 4),
            clean_read_hits: clean.min(cache / 4),
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        if plan.is_idle() {
            continue;
        }
        let moved = plan.n_fwb + plan.n_wb() + plan.n_ifrm();
        if moved == 0 {
            continue;
        }
        let k = budget.k.as_f64();
        let before = f64::from(cache) / f64::from(mm);
        if before <= k {
            continue;
        }
        let cache_after = f64::from(cache - moved);
        let mm_after = f64::from(mm + plan.n_wb() + plan.n_ifrm());
        let after = cache_after / mm_after;
        assert!(
            after <= before + 1e-9,
            "partitioning must not raise cache share"
        );
        assert!(
            after >= k - 1.0 - 1e-9,
            "must not wildly overshoot below K: after {after}, K {k}"
        );
    }
}

/// Alloy plans respect DBC and write caps.
#[test]
fn alloy_plan_respects_caps() {
    let mut rng = SplitMix64::new(0xDA9_0007);
    for _ in 0..CASES {
        let cache = rng.below(2000) as u32;
        let mm = rng.below(500) as u32;
        let writes = rng.below(300) as u32;
        let clean = rng.below(300) as u32;
        let budget = WindowBudget::from_gbps(102.4 * 2.0 / 3.0, None, 38.4, 4.0, 64, 0.75);
        let solver = AlloyDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            writes,
            clean_read_hits: clean,
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        assert!(plan.n_ifrm <= clean);
        assert!(plan.n_write_through <= writes);
        // Write-through plus IFRM never exceeds the MM budget headroom.
        let mm_added = i64::from(plan.n_ifrm) + i64::from(plan.n_write_through);
        assert!(
            mm_added <= i64::from(budget.mm_budget).max(0) - i64::from(mm)
                || plan.n_write_through == 0
        );
    }
}

/// eDRAM plans respect caps in all three cases.
#[test]
fn edram_plan_respects_caps() {
    let mut rng = SplitMix64::new(0xDA9_0008);
    for _ in 0..CASES {
        let a_r = rng.below(1000) as u32;
        let a_w = rng.below(1000) as u32;
        let mm = rng.below(500) as u32;
        let rm = rng.below(300) as u32;
        let wm = rng.below(300) as u32;
        let clean = rng.below(300) as u32;
        let budget = WindowBudget::from_gbps(51.2, Some(51.2), 38.4, 4.0, 64, 0.75);
        let solver = EdramDapSolver::new(budget);
        let stats = WindowStats {
            cache_read_accesses: a_r,
            cache_write_accesses: a_w,
            cache_accesses: a_r + a_w,
            mm_accesses: mm,
            read_misses: rm,
            writes: wm,
            clean_read_hits: clean,
        };
        let plan = solver.solve(&stats);
        assert!(plan.n_fwb <= rm);
        assert!(plan.n_wb <= wm);
        assert!(plan.n_ifrm <= clean);
        if a_r <= budget.cache_channel_budget && a_w <= budget.cache_channel_budget {
            assert!(plan.is_idle());
        }
    }
}

/// Controller credits never let more applications through than the plan
/// granted (saturation & scaled consumption are conservative).
#[test]
fn controller_never_overspends() {
    let mut rng = SplitMix64::new(0xDA9_0009);
    for _ in 0..CASES {
        let cache = rng.range_u64(20, 200) as u32;
        let mm = rng.below(20) as u32;
        let rm = rng.below(64) as u32;
        let wm = rng.below(64) as u32;
        let clean = rng.below(64) as u32;
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm,
            writes: wm,
            clean_read_hits: clean,
            ..Default::default()
        };
        let budget = dap.budget();
        let plan = SectoredDapSolver::new(*budget).solve(&stats);
        dap.end_window_with(&stats);
        let mut applied = [0u32; 4];
        let order = [
            Technique::FillWriteBypass,
            Technique::WriteBypass,
            Technique::InformedForcedReadMiss,
            Technique::SpeculativeForcedReadMiss,
        ];
        for (i, t) in order.iter().enumerate() {
            while dap.try_apply(*t) {
                applied[i] += 1;
                assert!(applied[i] <= 64, "runaway credits for {t:?}");
            }
        }
        assert!(applied[0] <= plan.n_fwb.min(63));
        assert!(applied[1] <= plan.n_wb().min(63));
        assert!(applied[2] <= plan.n_ifrm().min(63));
        assert!(applied[3] <= plan.n_sfrm.min(63));
    }
}

/// Degraded-bandwidth fractions: for any measured per-source bandwidth
/// (including a fully dark source) and any window the solver can see,
/// the solved and ideal fractions each sum to exactly 1.
#[test]
fn degraded_fractions_sum_to_one() {
    use dap_core::telemetry::sectored_fractions_weighted;
    use dap_core::EffectiveBandwidth;
    let mut rng = SplitMix64::new(0xDA9_000A);
    let config = DapConfig::hbm_ddr4();
    for _ in 0..CASES {
        // Scales in [0, 1]; each source goes fully dark in ~1/8 of cases.
        let cache_scale = if rng.chance(0.125) {
            0.0
        } else {
            rng.range_f64(0.01, 1.0)
        };
        let mm_scale = if rng.chance(0.125) {
            0.0
        } else {
            rng.range_f64(0.01, 1.0)
        };
        let effective = EffectiveBandwidth::scaled(&config, cache_scale, mm_scale);
        let budget = effective.budget(&config);
        let stats = WindowStats {
            cache_accesses: rng.below(2000) as u32,
            mm_accesses: rng.below(500) as u32,
            read_misses: rng.below(300) as u32,
            writes: rng.below(300) as u32,
            clean_read_hits: rng.below(300) as u32,
            ..Default::default()
        };
        let plan = SectoredDapSolver::new(budget).solve(&stats);
        let f = sectored_fractions_weighted(&stats, &plan, effective.cache_gbps, effective.mm_gbps);
        let n = usize::from(f.sources);
        let solved_sum: f64 = f.solved[..n].iter().sum();
        let ideal_sum: f64 = f.ideal[..n].iter().sum();
        assert!(
            (solved_sum - 1.0).abs() < 1e-9,
            "scales ({cache_scale}, {mm_scale}): sum solved = {solved_sum}"
        );
        assert!(
            (ideal_sum - 1.0).abs() < 1e-9,
            "scales ({cache_scale}, {mm_scale}): sum ideal = {ideal_sum}"
        );
        for v in f.solved[..n].iter().chain(&f.ideal[..n]) {
            assert!((0.0..=1.0).contains(v), "fraction out of range: {v}");
        }
    }
}

/// A fully-outaged source never gets a nonzero ideal fraction: Eq. 4
/// re-solved against measured bandwidth targets zero accesses at a dark
/// source, and its window budget is zero so no credits can route there.
#[test]
fn dark_source_gets_zero_ideal_fraction_and_budget() {
    use dap_core::telemetry::sectored_fractions_weighted;
    use dap_core::EffectiveBandwidth;
    let mut rng = SplitMix64::new(0xDA9_000B);
    let config = DapConfig::hbm_ddr4();
    for _ in 0..CASES {
        let live_scale = rng.range_f64(0.01, 1.0);
        let cache_dark = rng.chance(0.5);
        let (cache_scale, mm_scale) = if cache_dark {
            (0.0, live_scale)
        } else {
            (live_scale, 0.0)
        };
        let effective = EffectiveBandwidth::scaled(&config, cache_scale, mm_scale);
        assert_eq!(effective.cache_dark(), cache_dark);
        assert_eq!(effective.mm_dark(), !cache_dark);
        let budget = effective.budget(&config);
        if cache_dark {
            assert_eq!(budget.cache_budget, 0, "dark cache gets no budget");
        } else {
            assert_eq!(budget.mm_budget, 0, "dark main memory gets no budget");
        }
        let stats = WindowStats {
            cache_accesses: rng.below(2000) as u32,
            mm_accesses: rng.below(500) as u32,
            read_misses: rng.below(300) as u32,
            writes: rng.below(300) as u32,
            clean_read_hits: rng.below(300) as u32,
            ..Default::default()
        };
        let plan = SectoredDapSolver::new(budget).solve(&stats);
        let f = sectored_fractions_weighted(&stats, &plan, effective.cache_gbps, effective.mm_gbps);
        let dark_index = usize::from(!cache_dark);
        assert_eq!(
            f.ideal[dark_index], 0.0,
            "dark source must have an ideal fraction of exactly zero"
        );
        let live_index = usize::from(cache_dark);
        assert!((f.ideal[live_index] - 1.0).abs() < 1e-12);
    }
}
