//! Property-based tests for the DAP analytical model and window solvers.

use dap_core::{
    delivered_bandwidth, optimal_fractions, AlloyDapSolver, BandwidthSource, DapConfig,
    DapController, EdramDapSolver, Ratio, SectoredDapSolver, Technique, WindowBudget, WindowStats,
};
use proptest::prelude::*;

fn arb_sources(n: usize) -> impl Strategy<Value = Vec<BandwidthSource>> {
    prop::collection::vec(0.5f64..500.0, n..=n).prop_map(|rates| {
        rates
            .into_iter()
            .enumerate()
            .map(|(i, g)| BandwidthSource::from_gbps(format!("s{i}"), g))
            .collect()
    })
}

proptest! {
    /// Eq. 3: no partition delivers more than the optimal one.
    #[test]
    fn optimal_partition_dominates(
        sources in arb_sources(3),
        raw in prop::collection::vec(0.01f64..1.0, 3),
    ) {
        let sum: f64 = raw.iter().sum();
        let fractions: Vec<f64> = raw.iter().map(|r| r / sum).collect();
        let opt = optimal_fractions(&sources);
        let b_any = delivered_bandwidth(&sources, &fractions);
        let b_opt = delivered_bandwidth(&sources, &opt);
        prop_assert!(b_any <= b_opt * (1.0 + 1e-9),
            "partition {fractions:?} beat the optimum: {b_any} > {b_opt}");
    }

    /// Eq. 3: the optimum equals the sum of source bandwidths.
    #[test]
    fn optimum_is_sum_of_bandwidths(sources in arb_sources(4)) {
        let opt = optimal_fractions(&sources);
        let b_opt = delivered_bandwidth(&sources, &opt);
        let total: f64 = sources.iter().map(|s| s.accesses_per_sec()).sum();
        prop_assert!((b_opt - total).abs() / total < 1e-9);
    }

    /// Ratio approximation stays within 5% whenever a denominator <= 16
    /// suffices, and multiplication floors correctly.
    #[test]
    fn ratio_approximation_is_tight(k in 0.1f64..16.0, x in 0u64..10_000) {
        let r = Ratio::approximate(k);
        let exact = (x as f64) * r.as_f64();
        prop_assert_eq!(r.mul_int(x), exact.floor() as u64);
    }

    /// The sectored solver never plans more work than exists: FWB <= fills,
    /// WB <= writes, IFRM <= clean hits, and everything is non-negative.
    #[test]
    fn sectored_plan_respects_caps(
        cache in 0u32..2000,
        mm in 0u32..500,
        rm in 0u32..300,
        wm in 0u32..300,
        clean in 0u32..300,
        w in prop::sample::select(vec![32u32, 64, 128]),
        e in prop::sample::select(vec![0.5f64, 0.75, 1.0]),
    ) {
        let budget = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, w, e);
        let solver = SectoredDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm.min(cache),
            writes: wm.min(cache),
            clean_read_hits: clean.min(cache),
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        prop_assert!(plan.n_fwb <= stats.read_misses || plan.n_fwb <= cache);
        prop_assert!(plan.n_wb() <= stats.writes);
        prop_assert!(plan.n_ifrm() <= stats.clean_read_hits);
        // FWB never exceeds the partitioning actually needed.
        let needed = cache.saturating_sub(budget.cache_budget);
        prop_assert!(plan.n_fwb <= needed.max(stats.read_misses));
    }

    /// The sectored solver is quiet when the cache is under budget, and the
    /// total partitioned volume never exceeds the cache overdemand by more
    /// than the equations allow.
    #[test]
    fn sectored_solver_quiet_under_budget(
        cache in 0u32..19,
        mm in 0u32..500,
        rm in 0u32..300,
    ) {
        let budget = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        let solver = SectoredDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm,
            ..Default::default()
        };
        prop_assert!(solver.solve(&stats).is_idle());
    }

    /// Applying the sectored plan moves the cache:MM access ratio toward K
    /// (never past overshooting in the wrong direction).
    #[test]
    fn sectored_plan_moves_ratio_toward_k(
        cache in 25u32..2000,
        mm in 1u32..100,
        rm in 0u32..300,
        wm in 0u32..300,
        clean in 0u32..300,
    ) {
        let budget = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        let solver = SectoredDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm.min(cache / 4),
            writes: wm.min(cache / 4),
            clean_read_hits: clean.min(cache / 4),
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        prop_assume!(!plan.is_idle());
        let moved = plan.n_fwb + plan.n_wb() + plan.n_ifrm();
        prop_assume!(moved > 0);
        let k = budget.k.as_f64();
        let before = f64::from(cache) / f64::from(mm);
        prop_assume!(before > k);
        let cache_after = f64::from(cache - moved);
        let mm_after = f64::from(mm + plan.n_wb() + plan.n_ifrm());
        let after = cache_after / mm_after;
        prop_assert!(after <= before + 1e-9, "partitioning must not raise cache share");
        prop_assert!(after >= k - 1.0 - 1e-9,
            "must not wildly overshoot below K: after {after}, K {k}");
    }

    /// Alloy plans respect DBC and write caps.
    #[test]
    fn alloy_plan_respects_caps(
        cache in 0u32..2000,
        mm in 0u32..500,
        writes in 0u32..300,
        clean in 0u32..300,
    ) {
        let budget = WindowBudget::from_gbps(102.4 * 2.0 / 3.0, None, 38.4, 4.0, 64, 0.75);
        let solver = AlloyDapSolver::new(budget);
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            writes,
            clean_read_hits: clean,
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        prop_assert!(plan.n_ifrm <= clean);
        prop_assert!(plan.n_write_through <= writes);
        // Write-through plus IFRM never exceeds the MM budget headroom.
        let mm_added = i64::from(plan.n_ifrm) + i64::from(plan.n_write_through);
        prop_assert!(mm_added <= i64::from(budget.mm_budget).max(0) - i64::from(mm)
            || plan.n_write_through == 0);
    }

    /// eDRAM plans respect caps in all three cases.
    #[test]
    fn edram_plan_respects_caps(
        a_r in 0u32..1000,
        a_w in 0u32..1000,
        mm in 0u32..500,
        rm in 0u32..300,
        wm in 0u32..300,
        clean in 0u32..300,
    ) {
        let budget = WindowBudget::from_gbps(51.2, Some(51.2), 38.4, 4.0, 64, 0.75);
        let solver = EdramDapSolver::new(budget);
        let stats = WindowStats {
            cache_read_accesses: a_r,
            cache_write_accesses: a_w,
            cache_accesses: a_r + a_w,
            mm_accesses: mm,
            read_misses: rm,
            writes: wm,
            clean_read_hits: clean,
            ..Default::default()
        };
        let plan = solver.solve(&stats);
        prop_assert!(plan.n_fwb <= rm);
        prop_assert!(plan.n_wb <= wm);
        prop_assert!(plan.n_ifrm <= clean);
        if a_r <= budget.cache_channel_budget && a_w <= budget.cache_channel_budget {
            prop_assert!(plan.is_idle());
        }
    }

    /// Controller credits never let more applications through than the
    /// plan granted (saturation & scaled consumption are conservative).
    #[test]
    fn controller_never_overspends(
        cache in 20u32..200,
        mm in 0u32..20,
        rm in 0u32..64,
        wm in 0u32..64,
        clean in 0u32..64,
    ) {
        let mut dap = DapController::new(DapConfig::hbm_ddr4());
        let stats = WindowStats {
            cache_accesses: cache,
            mm_accesses: mm,
            read_misses: rm,
            writes: wm,
            clean_read_hits: clean,
            ..Default::default()
        };
        let budget = dap.budget();
        let plan = SectoredDapSolver::new(*budget).solve(&stats);
        dap.end_window_with(&stats);
        let mut applied = [0u32; 4];
        let order = [
            Technique::FillWriteBypass,
            Technique::WriteBypass,
            Technique::InformedForcedReadMiss,
            Technique::SpeculativeForcedReadMiss,
        ];
        for (i, t) in order.iter().enumerate() {
            while dap.try_apply(*t) {
                applied[i] += 1;
                prop_assert!(applied[i] <= 64, "runaway credits for {t:?}");
            }
        }
        prop_assert!(applied[0] <= plan.n_fwb.min(63));
        prop_assert!(applied[1] <= plan.n_wb().min(63));
        prop_assert!(applied[2] <= plan.n_ifrm().min(63));
        prop_assert!(applied[3] <= plan.n_sfrm.min(63));
    }
}
