//! Satellite coverage for the three-source eDRAM DAP solver (Section
//! IV-C, Eq. 9–12): exact-arithmetic checks for the paper's cases
//! i–iii, boundary windows where a source's credits hit zero, and the
//! `Σ f_i = 1` invariant of the solved fractions under extreme
//! bandwidth ratios.

use dap_core::telemetry::edram_fractions;
use dap_core::{
    DapConfig, DapController, EdramDapSolver, EdramPlan, Technique, WindowBudget, WindowStats,
};

/// The paper's eDRAM system: 51.2 GB/s per direction, 38.4 GB/s DDR4,
/// 4 GHz, W=64, E=0.75 — channel budget 9, MM budget 7, K = 11/8.
fn edram_budget() -> WindowBudget {
    WindowBudget::from_gbps(51.2, Some(51.2), 38.4, 4.0, 64, 0.75)
}

fn solve(stats: &WindowStats) -> EdramPlan {
    EdramDapSolver::new(edram_budget()).solve(stats)
}

#[test]
fn case_i_matches_eq_9_exactly() {
    // Read shortage only (A_R = 20 > 9, A_W = 3 <= 9). Eq. 9 with
    // K = 11/8: N_IFRM = floor((8*20 - 11*2) / (11+8)) = floor(138/19) = 7,
    // then trimmed to the 7 - 2 = 5 accesses of MM headroom (each IFRM
    // adds one main-memory access).
    let stats = WindowStats {
        cache_read_accesses: 20,
        cache_write_accesses: 3,
        mm_accesses: 2,
        read_misses: 5,
        writes: 5,
        clean_read_hits: 15,
        ..Default::default()
    };
    assert_eq!(
        solve(&stats),
        EdramPlan {
            n_fwb: 0,
            n_wb: 0,
            n_ifrm: 5,
        }
    );
}

#[test]
fn case_i_ifrm_capped_by_clean_hits() {
    // Eq. 9 asks for 7 IFRMs but only 3 clean read hits exist to force.
    let stats = WindowStats {
        cache_read_accesses: 20,
        cache_write_accesses: 3,
        mm_accesses: 2,
        read_misses: 5,
        writes: 5,
        clean_read_hits: 3,
        ..Default::default()
    };
    assert_eq!(solve(&stats).n_ifrm, 3);
}

#[test]
fn case_ii_matches_eq_10_and_11_with_mm_headroom_trim() {
    // Write shortage only (A_W = 25 > 9). Eq. 10: N_FWB =
    // floor((8*25 - 11*3)/8) = 20, capped at Rm = 6 fills. Eq. 11 on the
    // remaining 19 writes: floor((8*19 - 11*3)/19) = 6 — but WB adds
    // main-memory traffic and only 7 - 3 = 4 accesses of MM headroom
    // remain, so the final plan trims WB to 4.
    let stats = WindowStats {
        cache_read_accesses: 5,
        cache_write_accesses: 25,
        mm_accesses: 3,
        read_misses: 6,
        writes: 20,
        clean_read_hits: 10,
        ..Default::default()
    };
    assert_eq!(
        solve(&stats),
        EdramPlan {
            n_fwb: 6,
            n_wb: 4,
            n_ifrm: 0,
        }
    );
}

#[test]
fn case_ii_fwb_alone_can_absorb_the_write_surplus() {
    // With plenty of fills available, Eq. 10 bypasses
    // floor((8*20 - 11*2)/8) = 17 fill writes; the 3 writes left over no
    // longer exceed K*A_MM, so Eq. 11 grants no WB at all.
    let stats = WindowStats {
        cache_read_accesses: 5,
        cache_write_accesses: 20,
        mm_accesses: 2,
        read_misses: 30,
        writes: 12,
        clean_read_hits: 10,
        ..Default::default()
    };
    assert_eq!(
        solve(&stats),
        EdramPlan {
            n_fwb: 17,
            n_wb: 0,
            n_ifrm: 0,
        }
    );
}

#[test]
fn case_iii_matches_eq_12_exactly() {
    // Both channel sets short (A_R = A_W = 20 > 9). Eq. 10 first:
    // floor((8*20 - 11*1)/8) = 18, capped at Rm = 4, so W_eff = 16.
    // Eq. 12 jointly with denom 2*11+8 = 30:
    //   N_WB   = floor((19*16 - 11*20 - 11*1)/30) = floor(73/30)  = 2
    //   N_IFRM = floor((19*20 - 11*16 - 11*1)/30) = floor(193/30) = 6
    // MM headroom is 7 - 1 = 6: WB's 2 fit, then IFRM trims to 4.
    let stats = WindowStats {
        cache_read_accesses: 20,
        cache_write_accesses: 20,
        mm_accesses: 1,
        read_misses: 4,
        writes: 12,
        clean_read_hits: 15,
        ..Default::default()
    };
    assert_eq!(
        solve(&stats),
        EdramPlan {
            n_fwb: 4,
            n_wb: 2,
            n_ifrm: 4,
        }
    );
}

#[test]
fn mm_at_budget_blocks_all_partitioning() {
    // Main memory at (or beyond) its own 7-access budget is the
    // bottleneck: both channel sets may be short, the plan stays idle.
    for mm_accesses in [7, 8, 30] {
        let stats = WindowStats {
            cache_read_accesses: 20,
            cache_write_accesses: 20,
            mm_accesses,
            read_misses: 5,
            writes: 12,
            clean_read_hits: 15,
            ..Default::default()
        };
        assert!(solve(&stats).is_idle(), "A_MM = {mm_accesses}");
    }
}

#[test]
fn one_access_of_headroom_grants_at_most_one_mm_technique() {
    // A_MM = 6 leaves exactly one access of MM headroom: WB and IFRM
    // together may claim at most that one; FWB (which *removes* MM
    // traffic) is unconstrained by it.
    let stats = WindowStats {
        cache_read_accesses: 20,
        cache_write_accesses: 20,
        mm_accesses: 6,
        read_misses: 5,
        writes: 12,
        clean_read_hits: 15,
        ..Default::default()
    };
    let plan = solve(&stats);
    assert!(plan.n_wb + plan.n_ifrm <= 1, "{plan:?}");
}

/// A read-pressured window on the controller's eDRAM configuration;
/// grants exactly 5 IFRM credits (the Eq. 9 solution of 7, trimmed to
/// the MM headroom of 5).
fn read_pressured() -> WindowStats {
    WindowStats {
        cache_read_accesses: 20,
        cache_write_accesses: 3,
        cache_accesses: 23,
        mm_accesses: 2,
        read_misses: 5,
        writes: 5,
        clean_read_hits: 15,
    }
}

#[test]
fn credits_drain_to_zero_within_the_window() {
    let mut dap = DapController::new(DapConfig::edram_ddr4());
    dap.end_window_with(&read_pressured());
    assert_eq!(dap.credits_remaining(Technique::InformedForcedReadMiss), 5);
    for used in 0..5 {
        assert!(dap.try_apply(Technique::InformedForcedReadMiss));
        assert_eq!(
            dap.credits_remaining(Technique::InformedForcedReadMiss),
            4 - used
        );
    }
    assert!(
        !dap.try_apply(Technique::InformedForcedReadMiss),
        "an empty counter must refuse the sixth application"
    );
    assert_eq!(dap.credits_remaining(Technique::InformedForcedReadMiss), 0);
}

#[test]
fn calm_boundary_clears_unspent_credits() {
    let mut dap = DapController::new(DapConfig::edram_ddr4());
    dap.end_window_with(&read_pressured());
    assert!(dap.try_apply(Technique::InformedForcedReadMiss));
    // The next window shows no pressure: the idle plan must clear the
    // six unspent credits rather than let them leak across windows.
    dap.end_window_with(&WindowStats::default());
    assert!(!dap.is_partitioning());
    for t in Technique::ALL {
        assert_eq!(dap.credits_remaining(t), 0, "{t:?}");
    }
    assert!(!dap.try_apply(Technique::InformedForcedReadMiss));
}

#[test]
fn pressured_window_refills_a_drained_counter() {
    let mut dap = DapController::new(DapConfig::edram_ddr4());
    dap.end_window_with(&read_pressured());
    while dap.try_apply(Technique::InformedForcedReadMiss) {}
    assert_eq!(dap.credits_remaining(Technique::InformedForcedReadMiss), 0);
    dap.end_window_with(&read_pressured());
    assert_eq!(dap.credits_remaining(Technique::InformedForcedReadMiss), 5);
}

#[test]
fn fractions_sum_to_one_under_extreme_bandwidth_ratios() {
    // Sweep bandwidth ratios from cache-dominant (K = 512) to
    // MM-dominant (K clamps at 1/16) and a grid of window shapes; for
    // every solved plan the post-plan fractions must form a valid
    // distribution over the three sources and respect the plan caps.
    let ratios = [(512.0, 1.0), (400.0, 0.5), (51.2, 38.4), (1.0, 512.0)];
    for (cache_gbps, mm_gbps) in ratios {
        let budget = WindowBudget::from_gbps(cache_gbps, Some(cache_gbps), mm_gbps, 4.0, 64, 0.75);
        let solver = EdramDapSolver::new(budget);
        for a_r in [0u32, 5, 40, 2000] {
            for a_w in [0u32, 7, 40] {
                for a_mm in [0u32, 3, 50] {
                    let stats = WindowStats {
                        cache_read_accesses: a_r,
                        cache_write_accesses: a_w,
                        cache_accesses: a_r + a_w,
                        mm_accesses: a_mm,
                        read_misses: a_r / 4,
                        writes: a_w / 2,
                        clean_read_hits: a_r / 2,
                    };
                    let plan = solver.solve(&stats);
                    assert!(plan.n_fwb <= stats.read_misses, "{plan:?} vs {stats:?}");
                    assert!(plan.n_wb <= stats.writes, "{plan:?} vs {stats:?}");
                    assert!(
                        plan.n_ifrm <= stats.clean_read_hits,
                        "{plan:?} vs {stats:?}"
                    );
                    if a_mm < budget.mm_budget {
                        assert!(
                            a_mm + plan.n_wb + plan.n_ifrm <= budget.mm_budget,
                            "MM traffic after the plan must fit the budget: \
                             {plan:?} vs {stats:?} (budget {})",
                            budget.mm_budget
                        );
                    }
                    let f = edram_fractions(&stats, &plan, budget.k);
                    assert_eq!(f.sources, 3);
                    let solved: f64 = f.solved.iter().sum();
                    let ideal: f64 = f.ideal.iter().sum();
                    assert!((solved - 1.0).abs() < 1e-9, "Σ solved = {solved}");
                    assert!((ideal - 1.0).abs() < 1e-9, "Σ ideal = {ideal}");
                    assert!(f
                        .solved
                        .iter()
                        .chain(f.ideal.iter())
                        .all(|&v| (0.0..=1.0).contains(&v)));
                }
            }
        }
    }
}
