//! Zero-measured-bandwidth windows through the degradation seam.
//!
//! A window that measures a source at zero bandwidth ("dark") must
//! produce an *exactly*-zero Eq. 4 fraction and a zero access budget for
//! that source — never a NaN, an infinity, or a panic — and the other
//! sources' arithmetic must be unperturbed. These tests go through the
//! `dap_core::` re-export paths on purpose: they double as a check that
//! the `dap-decide` extraction left every historical path resolving.

use dap_core::bandwidth::{delivered_bandwidth, optimal_fractions, BandwidthSource};
use dap_core::config::DapConfig;
use dap_core::degrade::{degraded_k, EffectiveBandwidth};

#[test]
fn dark_mm_fraction_is_exactly_zero_not_nan() {
    let sources = [
        BandwidthSource::from_gbps("MSC", 102.4),
        BandwidthSource::from_gbps("MM", 0.0),
    ];
    let f = optimal_fractions(&sources);
    assert_eq!(f[0], 1.0, "live source takes the whole stream");
    assert_eq!(f[1], 0.0, "dark source fraction must be exactly zero");
    assert!(f.iter().all(|x| x.is_finite()), "no NaN/inf: {f:?}");
}

#[test]
fn dark_cache_fraction_is_exactly_zero_not_nan() {
    let sources = [
        BandwidthSource::from_gbps("MSC", 0.0),
        BandwidthSource::from_gbps("MM", 38.4),
    ];
    let f = optimal_fractions(&sources);
    assert_eq!(f, vec![0.0, 1.0]);
    assert!(f.iter().all(|x| x.is_finite()));
}

#[test]
fn delivered_bandwidth_skips_zero_fraction_sources() {
    // With the dark source at fraction zero, delivered bandwidth is
    // whatever the live source sustains — the 0/0 division never runs.
    let sources = [
        BandwidthSource::from_gbps("MSC", 102.4),
        BandwidthSource::from_gbps("MM", 0.0),
    ];
    let b = delivered_bandwidth(&sources, &optimal_fractions(&sources));
    let gbps = b * 64.0 / 1e9;
    assert!((gbps - 102.4).abs() < 1e-6, "delivered {gbps} GB/s");
    assert!(b.is_finite());
}

#[test]
fn dark_mm_window_budget_is_zero_and_k_is_finite() {
    let config = DapConfig::hbm_ddr4();
    let eff = EffectiveBandwidth::scaled(&config, 1.0, 0.0);
    assert!(eff.mm_dark());
    let b = eff.budget(&config);
    assert_eq!(b.mm_budget, 0, "dark MM gets a zero access budget");
    assert_eq!(b.cache_budget, 19, "cache budget unperturbed");
    // K = B_MS$/B_MM has no finite value when MM is dark; the seam
    // substitutes a large finite ratio instead of dividing by zero.
    assert_eq!(b.k.denominator(), 1);
    assert!(b.k.numerator() >= 64, "K steers everything cache-side");
    assert!(b.k.as_f64().is_finite());
}

#[test]
fn dark_cache_window_budget_is_zero_and_k_is_zero() {
    let config = DapConfig::hbm_ddr4();
    let eff = EffectiveBandwidth::scaled(&config, 0.0, 1.0);
    assert!(eff.cache_dark());
    let b = eff.budget(&config);
    assert_eq!(b.cache_budget, 0);
    assert_eq!(b.cache_channel_budget, 0);
    assert_eq!(b.mm_budget, 7, "MM budget unperturbed");
    assert_eq!((b.k.numerator(), b.k.denominator()), (0, 1));
}

#[test]
fn both_sources_dark_is_representable_without_panic() {
    let config = DapConfig::hbm_ddr4();
    let eff = EffectiveBandwidth::scaled(&config, 0.0, 0.0);
    let b = eff.budget(&config);
    assert_eq!(b.cache_budget, 0);
    assert_eq!(b.mm_budget, 0);
    // Cache-dark wins the K tie-break: zero accesses belong cache-side.
    assert_eq!((b.k.numerator(), b.k.denominator()), (0, 1));
    assert_eq!(degraded_k(0.0, 0.0), b.k);
}

#[test]
fn vanishing_but_nonzero_rates_stay_finite() {
    // Just-above-dark rates must not overflow the ratio approximation or
    // the budget floor arithmetic.
    let config = DapConfig::hbm_ddr4();
    for scale in [1e-3, 1e-6, 1e-9] {
        let eff = EffectiveBandwidth::scaled(&config, scale, scale);
        let b = eff.budget(&config);
        assert!(b.k.as_f64().is_finite(), "scale {scale}");
        let k = degraded_k(eff.cache_gbps, eff.mm_gbps).as_f64();
        assert!(k.is_finite() && k > 0.0, "scale {scale} k {k}");
    }
}
