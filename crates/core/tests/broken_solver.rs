//! End-to-end checked-mode test: an intentionally broken solver — a
//! controller whose window boundaries report a non-proportional Eq. 4
//! ideal — must be caught by the invariant auditor with the correct
//! equation reference, both in observe mode (counted, reported) and in
//! strict mode (fail fast with the reference in the panic message).

#![cfg(not(feature = "audit-off"))]

use dap_core::{AuditMode, DapConfig, DapController, Invariant};

/// Drives one full window of plausible traffic through a controller.
fn run_one_window(controller: &mut DapController) {
    for _ in 0..12 {
        controller.note_cache_access(false);
    }
    for _ in 0..4 {
        controller.note_mm_access();
    }
    controller.note_read_miss();
    controller.tick(u64::from(controller.config().window_cycles));
}

#[test]
fn broken_solver_is_reported_with_the_eq4_reference() {
    let mut controller = DapController::with_audit(DapConfig::hbm_ddr4(), AuditMode::Observe);
    controller.break_solver_for_test();
    run_one_window(&mut controller);
    let report = controller.audit_report().expect("auditing is on");
    assert!(report.violations >= 1, "the broken ideal must be caught");
    let violation = &report.first[0];
    assert_eq!(violation.invariant, Invariant::Eq4Proportionality);
    assert_eq!(violation.invariant.equation(), "Eq. 4 (B_i/f_i equalized)");
    assert_eq!(violation.window_index, 0, "caught at the first boundary");
}

#[test]
fn strict_mode_fails_fast_on_a_broken_solver() {
    let outcome = std::panic::catch_unwind(|| {
        let mut controller = DapController::with_audit(DapConfig::hbm_ddr4(), AuditMode::Strict);
        controller.break_solver_for_test();
        run_one_window(&mut controller);
    });
    let payload = outcome.expect_err("strict mode must fail fast");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("Eq. 4"),
        "the panic must carry the equation reference, got: {message}"
    );
}

#[test]
fn healthy_solver_passes_the_same_traffic_strictly() {
    let mut controller = DapController::with_audit(DapConfig::hbm_ddr4(), AuditMode::Strict);
    run_one_window(&mut controller);
    let report = controller.audit_report().expect("auditing is on");
    assert_eq!(report.violations, 0);
    assert!(report.windows_checked >= 1);
}
