//! # dap-repro — facade crate
//!
//! A reproduction of *“Near-Optimal Access Partitioning for Memory
//! Hierarchies with Multiple Heterogeneous Bandwidth Sources”* (HPCA 2017).
//! This crate re-exports the workspace's public API:
//!
//! * [`dap`] — the DAP algorithm and analytical bandwidth model,
//! * [`sim`] — the memory-hierarchy simulator substrate,
//! * [`workloads`] — the benchmark clones and mixes,
//! * [`policies`] — SBD / SBD-WT / BATMAN baselines,
//! * [`experiments`] — the per-figure experiment runners,
//! * [`dapd`] — DAP as a service: the multi-tenant partitioning daemon.
//!
//! See the `examples/` directory for end-to-end usage and the `dap-bench`
//! crate for the figure-regenerating binaries.
//!
//! ```
//! use dap_repro::dap::{optimal_fractions, BandwidthSource};
//! let f = optimal_fractions(&[
//!     BandwidthSource::from_gbps("HBM", 102.4),
//!     BandwidthSource::from_gbps("DDR4", 38.4),
//! ]);
//! assert!((f[1] - 0.272).abs() < 1e-2); // the paper's optimal MM share
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dap_core as dap;
pub use dapd;
pub use experiments;
pub use mem_sim as sim;
pub use policies;
pub use workloads;
