//! Domain scenario: graph-analytics pointer chasing.
//!
//! Graph traversals are latency-bound, not bandwidth-bound: long dependent
//! chains with little memory-level parallelism. A good partitioning policy
//! must recognize this phase and stay out of the way — needless
//! partitioning would serve hits from the slower DDR memory and *lose*
//! performance (the failure mode the paper ascribes to BATMAN).
//!
//! ```sh
//! cargo run --release --example graph_pointer_chase
//! ```

use dap_repro::dap::DapConfig;
use dap_repro::experiments::runner::{build_policy, PolicyKind};
use dap_repro::sim::trace::{ChaseTrace, TraceSource};
use dap_repro::sim::{DapPolicy, System, SystemConfig};

/// Eight traversal workers chasing pointers through 4 MB adjacency pools,
/// with long computation gaps between memory operations.
fn traversal_workers() -> Vec<Box<dyn TraceSource>> {
    (0..8)
        .map(|i| {
            let base = 0x4000_0000 + (i as u64) * ((1 << 33) + 0x31_1000);
            Box::new(ChaseTrace::new(base, 25, 4 << 20)) as Box<dyn TraceSource>
        })
        .collect()
}

fn main() {
    let config = SystemConfig::sectored_dram_cache(8);
    let instructions = 300_000;

    let base = System::new(config.clone(), traversal_workers()).run(instructions);
    let dap = System::with_policy(
        config.clone(),
        traversal_workers(),
        Box::new(DapPolicy::new(DapConfig::hbm_ddr4())),
    )
    .run(instructions);
    let batman = System::with_policy(
        config.clone(),
        traversal_workers(),
        build_policy(PolicyKind::Batman, &config).expect("sectored cache supports BATMAN"),
    )
    .run(instructions);

    println!("latency-bound graph traversal, 8 workers\n");
    println!("policy     traversal throughput (IPC)   vs baseline");
    println!("baseline   {:>10.3}", base.total_ipc());
    for (name, r) in [("DAP", &dap), ("BATMAN", &batman)] {
        println!(
            "{name:<9}  {:>10.3}                  {:+6.2}%",
            r.total_ipc(),
            (r.total_ipc() / base.total_ipc() - 1.0) * 100.0
        );
    }
    let partitioned = dap
        .dap_decisions
        .map(|d| d.windows_partitioned as f64 / d.windows_total.max(1) as f64)
        .unwrap_or(0.0);
    println!(
        "\nDAP partitioned only {:.2}% of windows: it detects there is no cache-bandwidth",
        partitioned * 100.0
    );
    println!("shortage and leaves the latency-sensitive traversal alone. BATMAN keeps");
    println!("modulating the hit rate regardless, which is why the paper reports losses");
    println!("for it on latency-sensitive phases (Section VI-A4).");
}
