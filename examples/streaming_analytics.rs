//! Domain scenario: an in-memory column-scan analytics engine.
//!
//! Analytical databases stream large column segments with a modest write
//! mix (intermediate results) — exactly the bandwidth-bound access pattern
//! the paper's introduction motivates. This example builds such a workload
//! directly from trace primitives (no benchmark clones) and measures how
//! much scan throughput DAP recovers from the idle DDR channels across
//! cache bandwidth points.
//!
//! ```sh
//! cargo run --release --example streaming_analytics
//! ```

use dap_repro::dap::DapConfig;
use dap_repro::sim::dram::DramConfig;
use dap_repro::sim::trace::{StrideTrace, TraceSource};
use dap_repro::sim::{CacheKind, DapPolicy, System, SystemConfig};

/// Eight scan workers, each streaming a 6 MB column segment (scaled) with
/// a 15% write mix and three non-memory instructions per access.
fn scan_workers(cores: usize) -> Vec<Box<dyn TraceSource>> {
    (0..cores)
        .map(|i| {
            let base = 0x2000_0000 + (i as u64) * ((1 << 33) + 0x31_1000);
            Box::new(StrideTrace::new(base, 3, 6 << 20, 0.15)) as Box<dyn TraceSource>
        })
        .collect()
}

fn run(cache_gbps: f64, dram: DramConfig, with_dap: bool) -> f64 {
    let mut config = SystemConfig::sectored_dram_cache(8);
    if let CacheKind::Sectored { dram: d, .. } = &mut config.cache {
        *d = dram;
    }
    let mut system = if with_dap {
        let dap = DapConfig {
            cache_gbps,
            ..DapConfig::hbm_ddr4()
        };
        System::with_policy(config, scan_workers(8), Box::new(DapPolicy::new(dap)))
    } else {
        System::new(config, scan_workers(8))
    };
    let result = system.run(600_000);
    // Scan throughput: blocks touched per microsecond across the cluster.
    let memops = 600_000.0 * 8.0 / 4.0; // one access per (1 + gap) instructions
    let seconds = result.per_core.iter().map(|c| c.cycles).max().unwrap() as f64 / 4e9;
    memops / seconds / 1e6
}

fn main() {
    println!("column-scan throughput (blocks/us), 8 workers, 38.4 GB/s DDR4 behind the cache\n");
    println!("cache bandwidth     baseline      +DAP     gain");
    for (gbps, dram) in [
        (102.4, DramConfig::hbm_102()),
        (128.0, DramConfig::hbm_128()),
        (204.8, DramConfig::hbm_204()),
    ] {
        let base = run(gbps, dram.clone(), false);
        let dap = run(gbps, dram, true);
        println!(
            "{:>9.1} GB/s    {:>9.1} {:>9.1}   {:+5.1}%",
            gbps,
            base,
            dap,
            (dap / base - 1.0) * 100.0
        );
    }
    println!("\nThe gain shrinks as the cache gets faster: with more cache bandwidth the");
    println!("baseline is already closer to the optimal partition (paper Fig. 10).");
}
