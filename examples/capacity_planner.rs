//! Domain scenario: capacity/bandwidth planning with the analytical model.
//!
//! Before simulating anything, the paper's Section III bandwidth equation
//! answers sizing questions directly: given a set of heterogeneous memory
//! sources, what is the best achievable bandwidth, how should accesses be
//! split, and how much does an unbalanced split cost? This example plans a
//! hypothetical two-tier and three-tier part entirely analytically.
//!
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use dap_repro::dap::{delivered_bandwidth, optimal_fractions, BandwidthSource, SystemBandwidth};

fn gbps(accesses_per_sec: f64) -> f64 {
    accesses_per_sec * 64.0 / 1e9
}

fn report(name: &str, sources: Vec<BandwidthSource>, inflation: f64) {
    println!("== {name}");
    let sys = SystemBandwidth::new(sources.clone(), inflation);
    let opt = sys.optimal_fractions();
    for (s, f) in sources.iter().zip(&opt) {
        println!("   {s:<24} optimal share {:5.1}%", f * 100.0);
    }
    println!(
        "   max demand bandwidth: {:.1} GB/s (C = {inflation})",
        gbps(sys.max_demand_bandwidth())
    );

    // Cost of the cache-centric split everyone ships by default: send
    // everything to the fastest source.
    let mut naive = vec![0.0; sources.len()];
    naive[0] = 1.0;
    let b_naive = delivered_bandwidth(&sources, &naive);
    let b_opt = delivered_bandwidth(&sources, &opt);
    println!(
        "   all-to-cache delivers {:.1} GB/s -> partitioning recovers {:+.0}%\n",
        gbps(b_naive),
        (b_opt / b_naive - 1.0) * 100.0
    );
}

fn main() {
    println!("bandwidth planning with the Section III model\n");

    report(
        "HPCA'17 default: HBM cache + DDR4",
        vec![
            BandwidthSource::from_gbps("HBM cache", 102.4),
            BandwidthSource::from_gbps("DDR4-2400", 38.4),
        ],
        1.25,
    );

    report(
        "eDRAM part: split channels + DDR4",
        vec![
            BandwidthSource::from_gbps("eDRAM read", 51.2),
            BandwidthSource::from_gbps("eDRAM write", 51.2),
            BandwidthSource::from_gbps("DDR4-2400", 38.4),
        ],
        1.2,
    );

    report(
        "future part: HBM3 + two DDR5 channels + CXL tier",
        vec![
            BandwidthSource::from_gbps("HBM3", 512.0),
            BandwidthSource::from_gbps("DDR5-6400", 102.4),
            BandwidthSource::from_gbps("CXL tier", 64.0),
        ],
        1.15,
    );

    // Sanity: the optimal fractions equalize B_i / f_i (Eq. 4).
    let sources = vec![
        BandwidthSource::from_gbps("a", 100.0),
        BandwidthSource::from_gbps("b", 25.0),
    ];
    let f = optimal_fractions(&sources);
    let ratios: Vec<f64> = sources
        .iter()
        .zip(&f)
        .map(|(s, f)| s.accesses_per_sec() / f)
        .collect();
    assert!((ratios[0] - ratios[1]).abs() / ratios[0] < 1e-12);
    println!("Eq. 4 check: B_1/f_1 == B_2/f_2 at the optimum — holds.");
}
