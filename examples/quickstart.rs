//! Quickstart: run one benchmark clone on the paper's default system, with
//! and without DAP, and print what changed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dap_repro::experiments::runner::{run_mix, PolicyKind};
use dap_repro::sim::SystemConfig;
use dap_repro::workloads::{rate_mix, spec};

fn main() {
    // The paper's platform: eight cores, a 4 GB (scaled) sectored HBM DRAM
    // cache at 102.4 GB/s, and dual-channel DDR4-2400 at 38.4 GB/s.
    let config = SystemConfig::sectored_dram_cache(8);

    // libquantum in rate-8 mode: eight copies of a bandwidth-hungry
    // streaming kernel, one per core.
    let mix = rate_mix(spec("libquantum").expect("known benchmark"), 8);

    println!("running baseline...");
    let base = run_mix(&config, PolicyKind::Baseline, &mix, 400_000);
    println!("running DAP...");
    let dap = run_mix(&config, PolicyKind::Dap, &mix, 400_000);

    let speedup = dap.total_ipc() / base.total_ipc();
    println!();
    println!("                      baseline      DAP");
    println!(
        "throughput (IPC)      {:8.3}  {:8.3}   ({:+.1}%)",
        base.total_ipc(),
        dap.total_ipc(),
        (speedup - 1.0) * 100.0
    );
    println!(
        "cache hit ratio       {:8.3}  {:8.3}   (DAP trades hits for bandwidth)",
        base.stats.ms_hit_ratio(),
        dap.stats.ms_hit_ratio()
    );
    println!(
        "main-memory CAS frac  {:8.3}  {:8.3}   (optimal = 0.27)",
        base.stats.mm_cas_fraction(),
        dap.stats.mm_cas_fraction()
    );
    println!(
        "avg read latency      {:8.0}  {:8.0}   cycles",
        base.stats.avg_read_latency(),
        dap.stats.avg_read_latency()
    );
    if let Some(d) = dap.dap_decisions {
        let [fwb, wb, ifrm, sfrm] = d.mix();
        println!();
        println!(
            "DAP decisions: {} total (FWB {:.0}%, WB {:.0}%, IFRM {:.0}%, SFRM {:.0}%)",
            d.total_decisions(),
            fwb * 100.0,
            wb * 100.0,
            ifrm * 100.0,
            sfrm * 100.0
        );
    }
}
