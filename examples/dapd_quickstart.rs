//! dapd quickstart: run the partitioning daemon in-process, route tenant
//! traffic through it, throttle a backend, and watch the measured
//! re-solve shift routing to the new Eq. 4 optimum.
//!
//! ```sh
//! cargo run --release --example dapd_quickstart
//! ```
//!
//! The same daemon runs out-of-process via `dapctl serve` /
//! `dapctl loadgen` — this example just keeps everything in one binary
//! so the whole loop is visible.

use dap_repro::dapd::{Client, Engine, EngineConfig, Server};
use dap_repro::workloads::{spec, RequestStream};

/// Routes `requests` through the daemon, reporting synthetic service at
/// `rates[backend]` GB/s (1 GB/s = 1 byte/ns; fractional nanoseconds
/// carry between reports), and returns per-backend routed bytes.
fn drive(
    client: &mut Client,
    stream: &mut RequestStream,
    carry_ns: &mut [f64],
    rates: &[f64],
    requests: u32,
) -> Vec<u64> {
    let mut routed = vec![0u64; rates.len()];
    for _ in 0..requests {
        let r = stream.next_request();
        let d = client.get_route(r.tenant, r.bytes).expect("route");
        routed[d.backend] += u64::from(r.bytes);
        carry_ns[d.backend] += f64::from(r.bytes) / rates[d.backend];
        let nanos = carry_ns[d.backend] as u32;
        carry_ns[d.backend] -= f64::from(nanos);
        client
            .report_served(d.backend as u8, r.bytes, nanos)
            .expect("report");
    }
    routed
}

fn print_split(label: &str, routed: &[u64]) {
    let total: u64 = routed.iter().sum();
    let f0 = routed[0] as f64 / total as f64;
    println!(
        "{label:<28} hbm {:>9} B  ddr4 {:>9} B   f_hbm = {f0:.3}",
        routed[0], routed[1]
    );
}

fn main() {
    // The paper's two-source system as daemon backends: 102.4 GB/s HBM
    // + 38.4 GB/s DDR4, one reserved tenant (40 GB/s) + one best-effort.
    let config = EngineConfig::hbm_ddr4_pair();
    let nominal: Vec<f64> = config.backends.iter().map(|b| b.nominal_gbps).collect();
    let engine = Engine::new(config).expect("stock config");
    let server = Server::bind_tcp("127.0.0.1:0", engine).expect("bind");
    let addr = server.local_addr().expect("tcp").to_string();
    let handle = server.spawn().expect("spawn");
    println!("dapd listening on {addr}\n");

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let mut stream = RequestStream::from_spec(spec("mcf").expect("mcf"), 2, 7);
    let mut carry = vec![0.0; nominal.len()];

    // Healthy: Eq. 4 for (102.4, 38.4) wants f_hbm = 102.4/140.8 ≈ 0.727.
    let healthy = drive(&mut client, &mut stream, &mut carry, &nominal, 5_000);
    print_split("healthy (Eq.4 -> 0.727):", &healthy);

    // HBM throttles to a quarter rate. The daemon only sees the served
    // reports; one measurement window later it re-solves Eq. 4 against
    // the *measured* rates: f_hbm = 25.6/(25.6+38.4) = 0.400.
    let throttled = vec![nominal[0] * 0.25, nominal[1]];
    let degraded = drive(&mut client, &mut stream, &mut carry, &throttled, 5_000);
    print_split("hbm throttled (Eq.4 -> ~0.4):", &degraded);

    // Throttle lifts: measurements revive the full rate.
    let recovered = drive(&mut client, &mut stream, &mut carry, &nominal, 5_000);
    print_split("recovered (Eq.4 -> 0.727):", &recovered);

    println!("\n--- daemon stats (Prometheus exposition) ---");
    let stats = client.snapshot_stats().expect("stats");
    for line in stats.lines().filter(|l| !l.starts_with('#')) {
        println!("{line}");
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
    println!("\ndaemon shut down cleanly");
}
