#!/bin/bash
# Regenerates every figure/table of the paper into experiment_results/.
#
# DAP_INSTRUCTIONS scales fidelity vs runtime (default per-figure budgets).
# DAP_THREADS sets the worker count of the parallel experiment executor
# (default: all available cores). Results are bit-identical at any thread
# count — see crates/experiments/tests/determinism.rs.
#
# Fails loudly: any binary that exits non-zero aborts the whole run
# (`tee` runs under pipefail, and stderr is left on the terminal).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p experiment_results
BUDGET="${DAP_INSTRUCTIONS:-1200000}"
SMALL=$((BUDGET / 2))
run() { # bin budget
    echo "== $1 (budget $2)"
    DAP_INSTRUCTIONS=$2 cargo run --release --offline -p dap-bench --bin "$1" \
        | tee "experiment_results/$1.txt"
    echo
}
run fig01_bw_vs_hitrate "$BUDGET"
run fig02_edram_capacity "$BUDGET"
run fig04_bw_sensitivity "$BUDGET"
run fig05_tag_cache "$BUDGET"
run fig06_dap_sectored "$BUDGET"
run fig07_decision_mix "$BUDGET"
run fig08_cas_fraction "$BUDGET"
run table1_w_e_sensitivity "$SMALL"
run fig09_mm_technology "$SMALL"
run fig10_capacity_bandwidth "$SMALL"
run fig11_related_proposals "$SMALL"
run fig12_all_workloads "$SMALL"
run fig13_sixteen_cores "$SMALL"
run fig14_alloy "$SMALL"
run fig15_edram "$SMALL"
run ablation_thread_aware "$SMALL"
run ablation_write_batch "$SMALL"
run ablation_prefetch_degree "$SMALL"
run ext_os_visible "$SMALL"
run ablation_refresh "$SMALL"
echo "all experiments complete"
