#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from experiment_results/*.txt plus the
paper-expectation commentary below. Run after ./run_experiments.sh."""

import os
import sys

RESULTS = "experiment_results"

# (file, paper_expectation, agreement_notes)
SECTIONS = [
    ("fig01_bw_vs_hitrate", """**Paper:** the single-bus HBM DRAM cache's delivered bandwidth rises with
hit rate and plateaus near the cache bandwidth from ~70% onward; the
split-channel eDRAM cache *peaks mid-range* and falls back to its read-channel
bandwidth (51.2 GB/s) at 100% because main-memory bandwidth goes unused.""",
     """**Agreement:** the analytic columns reproduce the paper's curves exactly.
The simulated eDRAM curve matches the analytic model within ~1% at every
point — rising to the 76.8 GB/s peak at 50% and falling back to 51.2 GB/s
at 100% — and the simulated DRAM$ curve shows the paper's plateau from 70%
onward at ~78% of the ideal level (the simulator charges the queueing,
metadata, and fill overheads the idealized kernel omits)."""),
    ("fig02_edram_capacity", """**Paper:** doubling the eDRAM cache from 256 MB to 512 MB helps most
bandwidth-sensitive workloads, *but* the speedup does not track the miss-rate
drop: gcc.s04 gains only 5% despite a ~20pp miss drop and omnetpp loses 4%
despite a 5pp drop — the motivating evidence that hit rate is not the metric
to optimize.""",
     """**Agreement:** the same decoupling appears: several clones gain
substantially, while others (gcc.s04, libquantum) gain little or lose
slightly despite double-digit miss-rate drops — more hits concentrated on
the saturated cache channels do not help."""),
    ("fig04_bw_sensitivity", """**Paper:** twelve of seventeen workloads speed up when DRAM-cache bandwidth
doubles (the "bandwidth-sensitive" class, mean L3 MPKI 20.4); five do not
(mean MPKI 11.6).""",
     """**Agreement:** the twelve sensitive clones gain far more from doubled
bandwidth than the five insensitive ones, preserving the classification.
Absolute MPKI is ~10x the paper's because the clones compress SPEC's
billion-instruction snippets into millions of instructions — the *ratio*
between the classes (~5x) matches the paper's intent."""),
    ("fig05_tag_cache", """**Paper:** adding the 32K-entry SRAM tag cache to the sectored baseline
gives +16% average, with astar.BigLakes and omnetpp showing high tag-cache
miss rates (poor sector utilization).""",
     """**Agreement:** the tag cache is a large win (our baseline without it
pays DRAM metadata on every access), and the per-workload tag-cache miss
ordering matches: omnetpp and astar, the poor-sector-locality clones, miss
by far the most; streaming clones (libquantum, parboil-lbm) almost never
miss."""),
    ("fig06_dap_sectored", """**Paper:** DAP improves the twelve bandwidth-sensitive workloads by 15.2%
on average (range: -1% for parboil-lbm to 2x for omnetpp), with an 18%
average reduction in L3 read-miss latency; speedups correlate with the
latency savings.""",
     """**Agreement:** DAP speeds up *every* sensitive clone (+3% to +5.7%,
GMEAN +4.0%) with zero losses, latency drops 4% on average, and speedups
track latency savings workload-by-workload. Magnitude is roughly a quarter
of the paper's 15.2%: the clones' MLP-limited cores cannot over-demand the
cache as hard as the paper's tuned cores, and the per-window main-memory
headroom guard (added to keep bursty windows from over-steering) trades
peak gains for the strict no-loss profile seen here."""),
    ("fig07_decision_mix", """**Paper:** averaged over the sensitive workloads, DAP's decisions split
FWB 23% / WB 40% / IFRM 12% / SFRM 25%; gcc.expr and gobmk use only
FWB+WB; omnetpp is 87% SFRM.""",
     """**Agreement:** FWB dominates (63%) with WB second (27%) and IFRM/SFRM
minorities — the same "cheap techniques first" skew the paper shows,
with FWB/WB swapped in rank (our footprint-filled sectored cache offers
more drops-available fills than the paper's). SFRM's share is smaller than
the paper's because the scaled tag cache misses less pathologically than
the paper's omnetpp case."""),
    ("fig08_cas_fraction", """**Paper:** the baseline serves only 9% of CAS operations from main memory;
DAP raises this to 25%, close to the bandwidth-optimal 27%. Baseline hit
rate 89% drops to 80% with FWB+WB and 73% with full DAP.""",
     """**Agreement:** DAP raises the main-memory CAS fraction (0.136 -> 0.161,
toward the 0.27 optimum; the per-window MM headroom guard stops short of
it deliberately), and the hit rate falls monotonically from baseline
(0.805) -> FWB+WB (0.780) -> full DAP (0.777) — the paper's signature
"sacrifice hits for bandwidth" staircase."""),
    ("table1_w_e_sensitivity", """**Paper:** W=64/E=0.75 is best (1.15); W=32 and W=128 are within 2%;
E=1.0 is the *worst* efficiency point (1.12) because assuming full
bandwidth makes DAP partition less.""",
     """**Agreement:** E=0.75 edges out both E=0.5 and E=1.0 at W=64 (all within
0.2%, matching the paper's ±2% flatness). The W sweep is monotone rather
than flat here — larger windows average out the cross-core accounting
noise our quantum interleaving introduces — but stays within 4.5% across
the 4x W range, consistent with the paper's "relatively insensitive"
claim."""),
    ("fig09_mm_technology", """**Paper:** removing main-memory I/O latency raises DAP's gain slightly
(15.2% -> 16%); slower LPDDR4 halves it (to 8%); higher-bandwidth
DDR4-3200 raises it across the board.""",
     """**Agreement:** LPDDR4 gives the smallest latency-group gain and DDR4-3200
by far the largest (Eq. 4: more MM bandwidth moves the optimal split
toward main memory, leaving more for DAP to exploit) — the paper's two
directional claims. The no-I/O point sits at the default's level rather
than above it (the 33-cycle I/O delay is small against our queueing
latencies)."""),
    ("fig10_capacity_bandwidth", """**Paper:** DAP's gain grows with cache capacity (more accesses served by
the cache in the baseline = further from optimal) and shrinks with cache
bandwidth (102.4 GB/s: 15.2% -> 204.8 GB/s: 7%).""",
     """**Agreement:** both trends reproduce: gains grow with capacity
(1.028 -> 1.044 -> 1.057 across 2/4/8 GB) and shrink monotonically as
cache bandwidth rises (1.044 -> 1.025 -> 1.007 across 102.4/128/204.8
GB/s) — the paper's Eq. 4 intuition in both directions, including the
near-vanishing gain at 204.8 GB/s (paper: 15.2% -> 7%)."""),
    ("fig11_related_proposals", """**Paper:** SBD *loses* 16% on average (forced Dirty-List write-outs),
SBD-WT gains 5.5%, BATMAN is within 1% of baseline; DAP's 15.2% beats all
three.""",
     """**Agreement:** SBD loses significantly (0.89; paper 0.84) from its forced
Dirty-List clean-outs, SBD-WT recovers to a small gain (1.02; paper 1.055),
BATMAN is near-neutral (1.01; paper ~0.99), and DAP beats all three (1.04)
— the paper's full ranking, including its observation that SBD and
SBD-WT do very well on omnetpp specifically (ours: 1.16/1.16 there)."""),
    ("fig12_all_workloads", """**Paper:** across all 44 workloads, DAP averages +13%; the five
bandwidth-insensitive rate mixes see no loss (DAP seldom partitions);
heterogeneous mixes gain 4%-72%.""",
     """**Agreement:** sensitive mixes gain the most (+2.2% to +5.8%), the five
insensitive mixes sit at 0.999-1.005 (no losses — DAP correctly recognizes
there is no bandwidth shortage and stands down), and the heterogeneous
mixes land in between; overall GMEAN +3.0% (paper: +13%, same structure at
our smaller magnitudes)."""),
    ("fig13_sixteen_cores", """**Paper:** on a 16-core system (8 GB / 204.8 GB/s cache, DDR4-3200), DAP
gains 14.6% — the mechanism scales with core count.""",
     """**Agreement:** DAP stays positive on every workload at 16 cores
(GMEAN +1.9%). The gain is smaller than at 8 cores because this
configuration pairs the 204.8 GB/s cache (where Fig. 10 already shows
DAP's margin nearly vanishing) with 51.2 GB/s memory."""),
    ("fig14_alloy", """**Paper:** on the Alloy cache, BEAR gains 22% over the Alloy baseline and
Alloy+DAP 29%; the main-memory CAS fraction moves from 13% (baseline) and
15% (BEAR) to 43% (DAP), near Alloy's optimum of 36% (its effective
bandwidth is 2/3 of peak).""",
     """**Agreement:** BEAR gains 14% over the plain Alloy baseline and Alloy+DAP
17%, with DAP ahead of BEAR on every workload (paper: 22% and 29%), and
DAP raises the main-memory CAS fraction above both baselines
(0.240 -> 0.261 -> 0.287), toward the 0.36 optimum."""),
    ("fig15_edram", """**Paper:** on the eDRAM cache, DAP at 256 MB gives +7% while *lowering*
hit rate 9.5pp; DAP at 512 MB gives +11% (vs +2% for doubling capacity
alone), lowering hit rate 6.5pp relative to the 256 MB baseline.""",
     """**Agreement:** at 512 MB DAP adds +2.1pp over doubling capacity alone
(1.256 vs 1.235) while serving the same or fewer hits — the paper's
"partitioning beats capacity" direction. At 256 MB DAP is neutral
(1.001): the scaled small eDRAM leaves main memory as the true bottleneck
and the solver's headroom guard correctly stands down, where the paper's
256 MB point still had partitioning room (+7%)."""),
    ("ext_os_visible", '''**Extension (not in the paper's evaluation):** Section II claims the
algorithms "can easily be extended to OS-visible implementations". In
OS-visible mode the fast memory holds pages exclusively, so Eq. 4 becomes a
*placement* rule: stop promoting hot pages once the fast tier's share of
accesses reaches `B_fast/(B_fast+B_mm)` = 0.73, instead of packing the tier
full (the hit-maximizing default).''',
     '''**Observation:** bandwidth-optimal placement beats hot-page packing by
about the same aggregate margin as cache-mode DAP delivers (shown
alongside), with the expected per-workload variance: streaming-heavy clones
gain substantially (the packed tier idles the DDR channels), while a few
chase-heavy clones prefer the extra fast-tier hits. The fast-fraction
columns show the mechanism directly — balanced placement deliberately
serves fewer accesses from the fast tier.'''),
    ("ablation_thread_aware", '''**Extension (not in the paper's evaluation):** Section IV-A notes that "a
thread-aware IFRM policy would prioritize the clean hits of the
latency-insensitive threads before the latency-sensitive ones for bypassing
to the main memory." We implement exactly that (demand-rate ranking; the
busy half of cores absorbs the last IFRM credits) and compare on the
dissimilar heterogeneous mixes.''',
     '''**Observation:** on these mixes the thread-aware variant matches plain
DAP in both aggregate speedup and the per-core floor: the credit reserve
only changes decisions when IFRM credits are scarce, which the dissimilar
mixes — where the latency-sensitive threads rarely generate clean-hit
pressure — seldom trigger. The reserving mechanism itself is unit-tested
(`mem_sim::policy::tests::thread_aware_reserves_last_credits_for_busy_cores`);
its protection is insurance against the worst case, not a steady-state
win.'''),
    ("ablation_write_batch", '''**Design-choice study:** the DRAM model drains buffered writes in batches
(one bus-turnaround penalty per batch), as the paper's methodology
specifies ("writes are scheduled in batches to reduce channel
turn-arounds").''',
     '''**Observation:** depth 16 (the default) is a good operating point;
very small batches waste bus time on turnarounds, very large ones delay
reads behind long write bursts. DAP's gain is robust across depths.'''),
    ("ablation_refresh", '''**Design-choice study:** the DRAM presets fold periodic refresh into the
bandwidth-efficiency factor `E`, exactly as the paper's methodology does.
This ablation instead models JEDEC refresh explicitly (tREFI = 7.8 us,
tRFC = 350 ns) on both the cache array and main memory.''',
     '''**Observation:** DAP's margin over baseline is unchanged by explicit
refresh (+4.3% vs +4.2%), confirming the paper's choice to fold refresh
into `E`. Curiously, refresh *helps* slightly in this model: the DRAM
channels charge row conflicts as latency without serializing banks (an
FR-FCFS abstraction), so refresh's row closures convert conflict charges
into cheaper empty-row activations, outweighing the ~4.5% tRFC duty
cycle. Absolute refresh costs would need bank-serialized precharge
modeling; the DAP-relevant conclusion is insensitive to it.'''),
    ("ablation_prefetch_degree", '''**Design-choice study:** the cores' stride prefetcher shapes how much
bandwidth demand reaches the memory-side cache (the paper's cores carry an
"aggressive multi-stream stride prefetcher").''',
     '''**Observation:** prefetching helps the baseline, and DAP's advantage
persists at every degree — DAP exploits whatever saturation the demand
stream produces, rather than depending on a particular prefetcher.'''),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Every figure and table of the paper's evaluation, regenerated by
`./run_experiments.sh` (per-core instruction budgets of 0.6–1.2M; all runs
deterministic). Absolute numbers differ from the paper — the substrate is a
scaled simulator with synthetic workload clones (see DESIGN.md) — so each
section compares the *shape*: who wins, in which direction, and where the
crossovers fall.

Reading the tables: `norm. WS` = weighted speedup normalized to the
experiment's baseline; CAS fractions are main-memory shares of all DRAM
data transfers (bandwidth-optimal: 0.27 for the sectored/eDRAM systems,
0.36 for Alloy); hit-rate changes are percentage points.

"""


def main():
    out = [HEADER]
    for name, paper, agree in SECTIONS:
        path = os.path.join(RESULTS, f"{name}.txt")
        if not os.path.exists(path):
            print(f"missing {path}", file=sys.stderr)
            continue
        body = open(path).read().rstrip()
        title = body.splitlines()[0]
        out.append(f"## {title}\n\n{paper}\n\n```text\n{body}\n```\n\n{agree}\n")
    open("EXPERIMENTS.md", "w").write("\n".join(out))
    print("EXPERIMENTS.md written")


if __name__ == "__main__":
    main()
