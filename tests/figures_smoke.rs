//! Smoke tests: every figure/table function runs at a tiny budget and
//! produces the expected structure (rows, columns, plausible values).
//! Magnitudes at these budgets are warmup-dominated; EXPERIMENTS.md records
//! the full-budget numbers.

use dap_repro::experiments::figures as f;
use dap_repro::experiments::FigureResult;

const INSTR: u64 = 25_000;

fn assert_shape(fig: &FigureResult, rows: usize, cols: usize) {
    assert_eq!(fig.rows.len(), rows, "{}: row count", fig.id);
    assert_eq!(fig.columns.len(), cols, "{}: column count", fig.id);
    for r in &fig.rows {
        assert_eq!(r.values.len(), cols, "{}: ragged row {}", fig.id, r.name);
        for v in &r.values {
            assert!(v.is_finite(), "{}: non-finite value in {}", fig.id, r.name);
        }
    }
    // Display must render every row.
    let text = fig.to_string();
    for r in &fig.rows {
        assert!(
            text.contains(&r.name),
            "{}: display misses {}",
            fig.id,
            r.name
        );
    }
}

#[test]
fn fig01_shape() {
    let fig = f::fig01_bw_vs_hitrate(INSTR);
    assert_shape(&fig, 6, 4);
    // The analytic single-bus curve is monotone then flat; the split
    // channel curve ends at the read-channel limit.
    assert!((fig.rows[5].values[0] - 102.4).abs() < 1e-6);
    assert!((fig.rows[5].values[2] - 51.2).abs() < 1e-6);
}

#[test]
fn fig02_shape() {
    assert_shape(&f::fig02_edram_capacity(INSTR), 12, 2);
}

#[test]
fn fig04_shape() {
    let fig = f::fig04_bw_sensitivity(INSTR);
    assert_shape(&fig, 17, 2);
    // MPKI column must be positive for every clone.
    assert!(fig.rows.iter().all(|r| r.values[1] > 0.0));
}

#[test]
fn fig05_shape() {
    let fig = f::fig05_tag_cache(INSTR);
    assert_shape(&fig, 12, 2);
    // Tag-cache miss ratios are probabilities.
    assert!(fig.rows.iter().all(|r| (0.0..=1.0).contains(&r.values[1])));
}

#[test]
fn fig06_and_fig07_shape() {
    let fig = f::fig06_dap_sectored(INSTR);
    assert_shape(&fig, 12, 2);
    let fig = f::fig07_decision_mix(INSTR);
    assert_shape(&fig, 12, 4);
    for r in &fig.rows {
        let sum: f64 = r.values.iter().sum();
        assert!(sum < 1.0 + 1e-9, "decision shares exceed 1 in {}", r.name);
    }
}

#[test]
fn fig08_shape() {
    let fig = f::fig08_cas_fraction(INSTR);
    assert_shape(&fig, 12, 5);
    assert!(fig
        .rows
        .iter()
        .all(|r| r.values.iter().all(|v| (0.0..=1.0).contains(v))));
}

#[test]
fn table1_shape() {
    let fig = f::table1_w_e_sensitivity(INSTR);
    assert_shape(&fig, 5, 1);
}

#[test]
fn fig09_fig10_shape() {
    assert_shape(&f::fig09_mm_technology(INSTR), 12, 4);
    assert_shape(&f::fig10_capacity_bandwidth(INSTR), 12, 6);
}

#[test]
fn fig11_shape() {
    assert_shape(&f::fig11_related_proposals(INSTR), 12, 4);
}

#[test]
fn fig12_shape() {
    let fig = f::fig12_all_workloads(INSTR);
    assert_shape(&fig, 44, 1);
}

#[test]
fn fig13_shape() {
    assert_shape(&f::fig13_sixteen_cores(INSTR), 12, 1);
}

#[test]
fn fig14_fig15_shape() {
    assert_shape(&f::fig14_alloy(INSTR), 12, 5);
    assert_shape(&f::fig15_edram(INSTR), 12, 6);
}

#[test]
fn ablations_shape() {
    use dap_repro::experiments::ablations as a;
    let fig = a::ablation_thread_aware(INSTR);
    assert_shape(&fig, 7, 4);
    let fig = a::ablation_write_batch(INSTR);
    assert_shape(&fig, 3, 2);
    let fig = a::ablation_prefetch_degree(INSTR);
    assert_shape(&fig, 3, 2);
    let fig = a::ablation_refresh(INSTR);
    assert_shape(&fig, 2, 2);
}

#[test]
fn extension_shape() {
    let fig = dap_repro::experiments::extensions::os_visible_tiering(INSTR);
    assert_shape(&fig, 12, 4);
}
