//! Workspace-level integration tests: the crates working together through
//! the facade, cross-validating the analytical model against simulation.

use dap_repro::dap::{optimal_fractions, BandwidthSource, DapConfig};
use dap_repro::experiments::runner::{run_mix, run_workload, AloneIpcCache, PolicyKind};
use dap_repro::sim::{DapPolicy, System, SystemConfig};
use dap_repro::workloads::{heterogeneous_mixes, rate_mix, rate_mode, spec};

const INSTR: u64 = 150_000;

#[test]
fn analytic_optimum_matches_paper_constants() {
    // The paper: optimal MM CAS fraction 0.27 for 102.4 + 38.4 GB/s, and
    // 0.36 for the Alloy cache's 2/3-effective bandwidth.
    let f = optimal_fractions(&[
        BandwidthSource::from_gbps("cache", 102.4),
        BandwidthSource::from_gbps("mm", 38.4),
    ]);
    assert!((f[1] - 0.2727).abs() < 1e-3);
    let f = optimal_fractions(&[
        BandwidthSource::from_gbps("alloy", 102.4 * 2.0 / 3.0),
        BandwidthSource::from_gbps("mm", 38.4),
    ]);
    assert!((f[1] - 0.36).abs() < 0.01);
}

#[test]
fn dap_moves_cas_split_toward_analytic_optimum() {
    let config = SystemConfig::sectored_dram_cache(8);
    let mix = rate_mix(spec("libquantum").unwrap(), 8);
    let base = run_mix(&config, PolicyKind::Baseline, &mix, 400_000);
    let dap = run_mix(&config, PolicyKind::Dap, &mix, 400_000);
    let optimal = 38.4 / (102.4 + 38.4);
    let err_base = (base.stats.mm_cas_fraction() - optimal).abs();
    let err_dap = (dap.stats.mm_cas_fraction() - optimal).abs();
    assert!(
        err_dap < err_base,
        "DAP must close the gap to the optimum: base err {err_base:.3}, dap err {err_dap:.3}"
    );
}

#[test]
fn dap_beats_baseline_on_every_architecture() {
    for (config, dap_config) in [
        (SystemConfig::sectored_dram_cache(8), DapConfig::hbm_ddr4()),
        (SystemConfig::edram_cache(8, 256), DapConfig::edram_ddr4()),
    ] {
        let mix = rate_mix(spec("libquantum").unwrap(), 8);
        let base = System::new(config.clone(), mix.traces()).run(300_000);
        let dap = System::with_policy(config, mix.traces(), Box::new(DapPolicy::new(dap_config)))
            .run(300_000);
        assert!(
            dap.total_ipc() > base.total_ipc() * 0.99,
            "DAP must not lose on a bandwidth-bound stream: base {}, dap {}",
            base.total_ipc(),
            dap.total_ipc()
        );
    }
}

#[test]
fn heterogeneous_mix_weighted_speedup_is_sane() {
    let config = SystemConfig::sectored_dram_cache(8);
    let mix = &heterogeneous_mixes()[0];
    let alone = AloneIpcCache::new();
    let run = run_workload(&config, PolicyKind::Baseline, mix, INSTR, &alone);
    // Eight programs sharing one memory system: each runs slower than
    // alone, so 0 < WS < 8.
    assert!(run.weighted_speedup > 0.0 && run.weighted_speedup < 8.0);
}

#[test]
fn all_policies_complete_on_a_heterogeneous_mix() {
    let config = SystemConfig::sectored_dram_cache(8);
    let mix = &heterogeneous_mixes()[13]; // a dissimilar mix
    for kind in [
        PolicyKind::Baseline,
        PolicyKind::Dap,
        PolicyKind::Sbd,
        PolicyKind::SbdWt,
        PolicyKind::Batman,
    ] {
        let r = run_mix(&config, kind, mix, 60_000);
        assert_eq!(r.per_core.len(), 8);
        assert!(
            r.stats.demand_reads > 0,
            "{kind:?} produced no memory traffic"
        );
    }
}

#[test]
fn rate16_scales() {
    let config = SystemConfig::sectored_dram_cache(16);
    let traces = rate_mode(spec("hpcg").unwrap(), 16);
    let r = System::new(config, traces).run(50_000);
    assert_eq!(r.per_core.len(), 16);
    assert!(r.per_core.iter().all(|c| c.instructions == 50_000));
}

#[test]
fn deterministic_through_the_full_stack() {
    let run = || {
        let config = SystemConfig::sectored_dram_cache(8);
        let mix = rate_mix(spec("mcf").unwrap(), 8);
        run_mix(&config, PolicyKind::Dap, &mix, 80_000).stats
    };
    assert_eq!(run(), run());
}

#[test]
fn facade_reexports_are_usable() {
    // The doc-example path: everything reachable through dap_repro.
    let budget = dap_repro::dap::WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
    assert_eq!(budget.cache_budget, 19);
    let cfg = dap_repro::sim::SystemConfig::sectored_dram_cache(1);
    assert_eq!(cfg.cores, 1);
    assert_eq!(dap_repro::workloads::all_specs().len(), 17);
}
