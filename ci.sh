#!/bin/bash
# Local CI: formatting, lints, release build, and the full test suite —
# all offline (the workspace has no registry dependencies; see the
# hermetic-build policy in Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo build --offline --features telemetry-off"
cargo build --offline --features telemetry-off

echo "ci: all checks passed"
