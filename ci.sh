#!/bin/bash
# Local CI: formatting, lints, release build, and the full test suite —
# all offline (the workspace has no registry dependencies; see the
# hermetic-build policy in Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline --all-targets -- -D warnings

# --workspace matters: with a root package, a bare `cargo build` covers
# only that package — the figure binaries and dapctl live in dap-bench
# and would silently stay stale (or missing on a clean checkout).
echo "== cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== cargo build --offline --features telemetry-off"
cargo build --offline --features telemetry-off

echo "== cargo build --offline --features audit-off"
cargo build --offline --features audit-off

# The extracted decision crate must keep building without std (core +
# alloc only) — the whole point of the extraction is embeddability.
echo "== dap-decide no_std build"
cargo build --offline -p dap-decide --no-default-features

# Fault-injection smoke: a tiny grid with one injected panic cell and a
# permanent channel-outage schedule must complete with exactly one
# CellError and bit-identical sibling cells (release: the grid is slow
# under debug assertions, and the release build already exists).
echo "== fault-injection smoke"
cargo test --release --offline -q -p experiments --test fault_tolerance \
    injected_panic_isolates_to_one_cell

# Strict-audit smoke: a small fig01 run with the checked-mode auditor
# failing fast must finish with zero invariant violations.
echo "== strict-audit fig01 smoke"
DAP_INSTRUCTIONS=20000 ./target/release/fig01_bw_vs_hitrate --audit >/dev/null

# SIGINT cancellation smoke: interrupt a checkpointed figure run mid-grid,
# expect the graceful-shutdown exit code (130) with a manifest on disk,
# then resume from the manifest to completion. Timing-tolerant: if the
# run finishes before the signal lands, a clean exit (0) also passes.
echo "== SIGINT cancellation smoke"
ckpt_dir=$(mktemp -d)
trap 'rm -rf "$ckpt_dir"' EXIT
DAP_INSTRUCTIONS=20000 DAP_RESUME="$ckpt_dir/grid.ckpt" \
    ./target/release/fig_fault_degradation >/dev/null 2>&1 &
smoke_pid=$!
sleep 2
kill -INT "$smoke_pid" 2>/dev/null || true
smoke_status=0
wait "$smoke_pid" || smoke_status=$?
if [ "$smoke_status" -eq 130 ]; then
    [ -s "$ckpt_dir/grid.ckpt" ] || {
        echo "ci: interrupted run left no checkpoint manifest" >&2
        exit 1
    }
elif [ "$smoke_status" -ne 0 ]; then
    echo "ci: SIGINT smoke exited with unexpected status $smoke_status" >&2
    exit 1
fi
DAP_INSTRUCTIONS=20000 DAP_RESUME="$ckpt_dir/grid.ckpt" \
    ./target/release/fig_fault_degradation >/dev/null

# Bench regression gate: the pinned suite must run, emit a
# schema-versioned BENCH JSON, and stay within 40% of the checked-in
# seed baseline (exit 3 otherwise). The run adopts the baseline's
# per-core budget automatically; min-of-3 timing absorbs scheduler
# noise, and the generous threshold absorbs machine-class differences —
# it still catches the algorithmic regressions that turn figure sweeps
# from minutes into hours.
echo "== bench regression gate (vs seed baseline, 40% threshold)"
./target/release/dapctl bench --label ci --out target/bench \
    --compare crates/bench/baselines/BENCH_seed.json --threshold 40 >/dev/null
grep -q '"schema":"dap-bench"' target/bench/BENCH_ci.json || {
    echo "ci: BENCH_ci.json is missing the dap-bench schema tag" >&2
    exit 1
}
grep -q '"version":1' target/bench/BENCH_ci.json || {
    echo "ci: BENCH_ci.json is missing schema version 1" >&2
    exit 1
}

# dapd smoke: start the daemon on a temp Unix socket, drive 10k requests
# through it with a mid-run throttle, and require a clean shutdown plus
# non-empty stats showing the daemon actually decided something.
echo "== dapd daemon smoke (serve + loadgen over a Unix socket)"
dapd_sock=$(mktemp -u /tmp/dapd-ci-XXXXXX.sock)
dapd_log=$(mktemp)
./target/release/dapctl serve --socket "$dapd_sock" > "$dapd_log" 2>&1 &
dapd_pid=$!
for _ in $(seq 50); do
    [ -S "$dapd_sock" ] && break
    sleep 0.1
done
[ -S "$dapd_sock" ] || {
    echo "ci: dapd never bound its socket" >&2
    cat "$dapd_log" >&2
    exit 1
}
loadgen_out=$(./target/release/dapctl loadgen --socket "$dapd_sock"     --requests 10000 --throttle-after 5000 --throttle-factor 0.25 --shutdown)
wait "$dapd_pid" || {
    echo "ci: dapd did not shut down cleanly" >&2
    cat "$dapd_log" >&2
    exit 1
}
grep -q "dapd: clean shutdown" "$dapd_log" || {
    echo "ci: dapd log is missing the clean-shutdown line" >&2
    cat "$dapd_log" >&2
    exit 1
}
echo "$loadgen_out" | grep -q "dapd_decisions_total 10000" || {
    echo "ci: dapd stats missing or wrong decision count" >&2
    echo "$loadgen_out" >&2
    exit 1
}
[ ! -e "$dapd_sock" ] || {
    echo "ci: dapd left its socket file behind" >&2
    exit 1
}
rm -f "$dapd_log"

# Ops-plane scrape smoke: daemon on ephemeral TCP + HTTP metrics ports,
# real load, then every ops endpoint is fetched AND validated by
# `dapctl scrape --check` (exposition format checker / flight-dump
# parser / JSON parser — exit 4 on malformed output). SIGUSR1 must dump
# a parseable flight-recorder JSONL, and the shutdown path stays clean.
echo "== dapd ops-plane smoke (/metrics scrape + SIGUSR1 flight dump)"
ops_dir=$(mktemp -d)
ops_log="$ops_dir/serve.log"
./target/release/dapctl serve --tcp 127.0.0.1:0 \
    --metrics-addr 127.0.0.1:0 --flight-dump "$ops_dir/flight.jsonl" \
    > "$ops_log" 2>&1 &
ops_pid=$!
dapd_addr=""
metrics_addr=""
for _ in $(seq 50); do
    dapd_addr=$(sed -n 's/^dapd listening on tcp //p' "$ops_log")
    metrics_addr=$(sed -n 's|^dapd metrics on http://||p' "$ops_log")
    [ -n "$dapd_addr" ] && [ -n "$metrics_addr" ] && break
    sleep 0.1
done
[ -n "$dapd_addr" ] && [ -n "$metrics_addr" ] || {
    echo "ci: dapd never printed its tcp/metrics addresses" >&2
    cat "$ops_log" >&2
    exit 1
}
./target/release/dapctl loadgen --tcp "$dapd_addr" --requests 2000 >/dev/null
./target/release/dapctl scrape "$metrics_addr" --check > "$ops_dir/metrics.prom"
grep -q 'dapd_decisions_total 2000' "$ops_dir/metrics.prom" || {
    echo "ci: scraped /metrics is missing the decision count" >&2
    cat "$ops_dir/metrics.prom" >&2
    exit 1
}
./target/release/dapctl scrape "$metrics_addr" --path /varz --check >/dev/null
./target/release/dapctl scrape "$metrics_addr" --path /debug/flight --check >/dev/null
./target/release/dapctl scrape "$metrics_addr" --path /healthz >/dev/null
kill -USR1 "$ops_pid"
for _ in $(seq 50); do
    [ -s "$ops_dir/flight.jsonl" ] && break
    sleep 0.1
done
grep -q '"schema":"dap-flight"' "$ops_dir/flight.jsonl" || {
    echo "ci: SIGUSR1 flight dump is missing or untagged" >&2
    exit 1
}
./target/release/dapctl scrape "$ops_dir/flight.jsonl" --check >/dev/null
./target/release/dapctl loadgen --tcp "$dapd_addr" --requests 1 --shutdown >/dev/null
wait "$ops_pid" || {
    echo "ci: dapd (ops smoke) did not shut down cleanly" >&2
    cat "$ops_log" >&2
    exit 1
}
rm -rf "$ops_dir"

# Chaos soak smoke: the seeded in-process fault proxy (fixed seed, temp
# Unix sockets) drives corruption/drops/stalls/partial writes at the
# daemon and asserts it sheds with Reject(Overloaded), converges back to
# the measured Eq. 4 optimum, conserves the tenant ledger exactly, shuts
# down cleanly, and that every fault class actually fired. Release: the
# soak's wall time is dominated by deliberate deadline waits either way,
# and the release build is already warm.
echo "== dapd chaos soak (seeded fault proxy)"
cargo test --release --offline -q -p dapd --test chaos

# Sharded-explorer smoke: a serial reference run of the smoke grid, then
# a 3-worker fleet with one worker killed (SIGKILL-class abort) right
# after winning its second claim. The fleet must survive the death — the
# orphaned lease expires after one TTL and a survivor steals it — drain
# the grid, and produce a merged manifest byte-identical to the serial
# reference (the merge writes cells in canonical key order, so `cmp` is
# the whole check).
echo "== sharded explore smoke (3 workers, one killed mid-claim)"
explore_dir=$(mktemp -d)
./target/release/dapctl explore --grid smoke --workers 1 \
    --instructions 20000 --out "$explore_dir/serial" >/dev/null
DAP_SHARD_KILL="1:1:2:after-claim" ./target/release/dapctl explore \
    --grid smoke --workers 3 --instructions 20000 --ttl-ms 1000 \
    --out "$explore_dir/fleet" >/dev/null
cmp "$explore_dir/serial/merged.ckpt" "$explore_dir/fleet/merged.ckpt" || {
    echo "ci: fleet merged manifest differs from the serial reference" >&2
    exit 1
}
rm -rf "$explore_dir"

# Shard kill-chaos harness: a 4-worker fleet with staged faults in every
# crash window (abort holding a fresh lease, abort between manifest
# record and lease done, mid-run interrupt) must merge bit-identical to
# a serial in-process reference, and a poisoned cell must be quarantined
# after K fleet-wide failures. Release: each worker is a real process
# running real simulations.
echo "== shard kill-chaos harness"
cargo test --release --offline -q -p experiments --test shard_chaos

# telemetry-off must compile the whole observability stack away without
# changing a figure's output: the same fig01 run from a telemetry-off
# release build must be byte-identical. The feature build targets
# dap-bench directly — the figure binaries live there, and a workspace-
# root `--features` never reaches them. Runs late: each feature build
# replaces the binaries in target/release.
echo "== telemetry-off fig01 byte-identical check"
DAP_INSTRUCTIONS=20000 ./target/release/fig01_bw_vs_hitrate > target/fig01_default.txt
cargo build --release --offline -p dap-bench --features telemetry-off
DAP_INSTRUCTIONS=20000 ./target/release/fig01_bw_vs_hitrate > target/fig01_telemetry_off.txt
cmp target/fig01_default.txt target/fig01_telemetry_off.txt || {
    echo "ci: telemetry-off changed fig01 output" >&2
    exit 1
}

# The epoch-skipping kernel must be bit-identical to the retained
# per-quantum reference loop: rebuild with the reference-kernel feature
# (which flips System::run to the reference loop) and diff the same
# fig01 run against the default build's output captured above.
echo "== reference-kernel fig01 byte-identical check"
cargo build --release --offline -p dap-bench --features reference-kernel
DAP_INSTRUCTIONS=20000 ./target/release/fig01_bw_vs_hitrate > target/fig01_reference_kernel.txt
cmp target/fig01_default.txt target/fig01_reference_kernel.txt || {
    echo "ci: reference-kernel changed fig01 output" >&2
    exit 1
}

# Restore the default-feature binaries so a later local run of this
# script (or an ad-hoc figure run) starts from the default build.
cargo build --release --offline -p dap-bench

echo "ci: all checks passed"
