#!/bin/bash
# Local CI: formatting, lints, release build, and the full test suite —
# all offline (the workspace has no registry dependencies; see the
# hermetic-build policy in Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo build --offline --features telemetry-off"
cargo build --offline --features telemetry-off

# Fault-injection smoke: a tiny grid with one injected panic cell and a
# permanent channel-outage schedule must complete with exactly one
# CellError and bit-identical sibling cells (release: the grid is slow
# under debug assertions, and the release build already exists).
echo "== fault-injection smoke"
cargo test --release --offline -q -p experiments --test fault_tolerance \
    injected_panic_isolates_to_one_cell

echo "ci: all checks passed"
