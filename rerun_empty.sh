#!/bin/bash
set -u
cd "$(dirname "$0")"
for t in table1_w_e_sensitivity:600000 fig09_mm_technology:600000 fig10_capacity_bandwidth:600000 \
         fig11_related_proposals:600000 fig12_all_workloads:600000 fig13_sixteen_cores:600000 \
         fig14_alloy:600000 fig15_edram:600000 ablation_thread_aware:600000 \
         ablation_write_batch:600000 ablation_prefetch_degree:600000 ext_os_visible:600000; do
    bin="${t%%:*}"; budget="${t##*:}"
    echo "== $bin (budget $budget)"
    DAP_INSTRUCTIONS=$budget ./target/release/$bin > "experiment_results/$bin.txt" 2>/dev/null
done
echo all done
