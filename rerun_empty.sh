#!/bin/bash
# Re-runs the long-budget experiments from prebuilt binaries. Honors
# DAP_THREADS like run_experiments.sh; fails loudly on the first binary
# that is missing or exits non-zero.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p experiment_results
for t in table1_w_e_sensitivity:600000 fig09_mm_technology:600000 fig10_capacity_bandwidth:600000 \
         fig11_related_proposals:600000 fig12_all_workloads:600000 fig13_sixteen_cores:600000 \
         fig14_alloy:600000 fig15_edram:600000 ablation_thread_aware:600000 \
         ablation_write_batch:600000 ablation_prefetch_degree:600000 ext_os_visible:600000; do
    bin="${t%%:*}"; budget="${t##*:}"
    if [[ ! -x "./target/release/$bin" ]]; then
        echo "error: ./target/release/$bin not built (run: cargo build --release --offline)" >&2
        exit 1
    fi
    echo "== $bin (budget $budget)"
    DAP_INSTRUCTIONS=$budget "./target/release/$bin" > "experiment_results/$bin.txt"
done
echo all done
